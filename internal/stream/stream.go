// Package stream implements session-based streaming verification: the
// online half of the paper's defense. A batch provider verifies a complete
// trajectory in one shot; a deployed provider sees points *as the user
// moves* and wants to score them as they arrive — both to reject
// confidently-forged prefixes before the upload finishes (saving pipeline
// work and bounding abuse) and to give honest clients early feedback.
//
// A Manager owns the open/append/close lifecycle of verification sessions.
// Each appended chunk runs the store's allocation-free per-point confidence
// kernel (rssimap.Store.PointConfidencesInto) incrementally and caches the
// resulting (Num_mac, Φ) confidences; a sliding window over the most recent
// points is aggregated into an Eq. 8 feature vector and scored by the
// XGBoost detector to produce a *provisional* P(fake). When the provisional
// probability of a sufficiently long prefix crosses the early-exit
// threshold, the session is rejected on the spot.
//
// Close hands the fully buffered trajectory back to the caller, which runs
// the ordinary batch pipeline on it — so the final verdict is bit-identical
// to what POSTing the same points to /v1/trajectory would have produced,
// regardless of how the stream was chunked. (The cached per-point
// confidences are deliberately NOT reused for the final verdict: the store
// may have grown between chunks, and the batch path is the ground truth.)
//
// Sessions are bounded three ways: an admission gate on the number of open
// sessions (MaxSessions), a per-session point budget (MaxPoints), and
// TTL/idle deadlines enforced by Expired + the server's sweep. The Manager
// holds no durability of its own; the server journals opens, chunks, and
// verdicts into its WAL and uses SnapshotSessions/RestoreSession to carry
// in-flight sessions across snapshots and crashes.
package stream

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trajforge/internal/detect"
	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// MaxIDLen bounds client-supplied session ids. The cap keeps ids cheap to
// journal and index, and — critically — guarantees the WAL codecs (which
// frame ids with a u16 length) can never fail on an id the admission path
// accepted: an oversized id failing asynchronously in the appender would
// trip the persistence breaker, handing unauthenticated clients a
// denial-of-service on durability.
const MaxIDLen = 128

// Sentinel errors the server maps to HTTP statuses.
var (
	// ErrLimit: the MaxSessions admission gate refused a new session.
	ErrLimit = errors.New("stream: session limit reached")
	// ErrIDTooLong: a client-supplied session id exceeds MaxIDLen.
	ErrIDTooLong = fmt.Errorf("stream: session id exceeds %d bytes", MaxIDLen)
	// ErrDuplicate: Open was given an id that is already open.
	ErrDuplicate = errors.New("stream: session id already open")
	// ErrNotFound: no open session has that id.
	ErrNotFound = errors.New("stream: unknown session")
	// ErrExpired: the session outlived its TTL or idle deadline. The
	// session stays registered until Evict so the caller can journal the
	// abort.
	ErrExpired = errors.New("stream: session expired")
	// ErrRejected: the early-exit already rejected the session's prefix;
	// no further points are accepted.
	ErrRejected = errors.New("stream: session rejected (confidently forged prefix)")
	// ErrClosing: a close is in progress; concurrent appends and closes
	// are refused.
	ErrClosing = errors.New("stream: session close in progress")
	// ErrTooManyPoints: the chunk would exceed the per-session point budget.
	ErrTooManyPoints = errors.New("stream: session point budget exhausted")
)

// SeqError reports an out-of-order chunk: the client's seq is neither the
// next expected chunk nor a replay of the last applied one.
type SeqError struct {
	Want, Got int
}

func (e *SeqError) Error() string {
	return fmt.Sprintf("stream: chunk seq %d, want %d", e.Got, e.Want)
}

// Config tunes a Manager. The zero value of every field selects a default;
// Detector may be nil, which disables provisional scoring and early exit
// (sessions still buffer, validate, and close through the batch path).
type Config struct {
	// Detector supplies the store and model the provisional scorer uses.
	Detector *detect.WiFiDetector
	// MaxSessions is the admission gate on concurrently open sessions.
	// Default 1024.
	MaxSessions int
	// MaxPoints bounds the per-session buffer. Default 10000 (the batch
	// endpoint's upload cap).
	MaxPoints int
	// TTL is the absolute session lifetime from Open. Default 10m.
	TTL time.Duration
	// IdleTimeout evicts sessions with no append/close activity. Default 90s.
	IdleTimeout time.Duration
	// Window is the sliding-window length (points) of the provisional
	// feature vector. Default 16.
	Window int
	// EarlyExit is the provisional P(fake) at or above which a prefix of
	// at least EarlyExitAfter points is rejected outright. Default 0.99.
	EarlyExit float64
	// EarlyExitAfter is the minimum scored prefix length before the early
	// exit may fire. Default 12.
	EarlyExitAfter int
	// DisableEarlyExit keeps provisional scoring but never rejects — the
	// configuration the bit-identity property tests run under.
	DisableEarlyExit bool
	// TimeTolerance is the allowed deviation from the session's sampling
	// interval, matching the batch decoder's trajectory validation.
	// Default 500ms.
	TimeTolerance time.Duration
	// Clock substitutes time.Now for deterministic expiry tests.
	Clock func() time.Time
}

func (c *Config) setDefaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 10000
	}
	if c.TTL <= 0 {
		c.TTL = 10 * time.Minute
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 90 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.EarlyExit <= 0 {
		c.EarlyExit = 0.99
	}
	if c.EarlyExitAfter <= 0 {
		c.EarlyExitAfter = 12
	}
	if c.TimeTolerance <= 0 {
		c.TimeTolerance = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Ack is the acknowledgement of one applied chunk (or the state echoed back
// for a replayed one): how much the session has buffered and scored, and
// the provisional verdict over the sliding window.
type Ack struct {
	// Seq is the number of chunks applied so far (the next expected seq).
	Seq int `json:"seq"`
	// Points is the total buffered point count.
	Points int `json:"points"`
	// Scored is how many buffered points have run the confidence kernel.
	Scored int `json:"scored"`
	// ProvisionalProbFake is the XGBoost P(fake) over the sliding window
	// of the most recent WindowPoints points. Zero when no detector is
	// configured.
	ProvisionalProbFake float64 `json:"provisional_prob_fake"`
	// WindowPoints is the window length the provisional verdict covers.
	WindowPoints int `json:"window_points"`
	// Rejected is set once the early exit fires: the prefix is confidently
	// forged, the session accepts no more points, and Close will return a
	// rejection.
	Rejected bool `json:"rejected"`
}

type sessionPhase int

const (
	phaseOpen sessionPhase = iota
	phaseRejected
	phaseClosing
)

// session is one in-flight streaming verification.
type session struct {
	id          string
	mode        trajectory.Mode
	contributor string // uploader identity bound at open; "" = anonymous

	mu       sync.Mutex
	phase    sessionPhase
	rejected bool // sticky early-exit marker; survives the move to phaseClosing
	points   []trajectory.Point
	scans    []wifi.Scan
	interval time.Duration // fixed by the first two points
	chunks   int
	lastAck  Ack

	// Provisional-scoring state: confs[i] is the cached TopK confidence
	// slice of point i, backed by arena; confBuf is the reusable
	// PointConfidencesInto target.
	scored  int
	confs   [][]rssimap.PointConfidence
	arena   []rssimap.PointConfidence
	confBuf []rssimap.PointConfidence

	created    time.Time
	lastActive time.Time
}

// SessionState is the serializable form of an in-flight session — what
// snapshots persist and WAL replay reconstructs. Gob keeps the float64
// plane coordinates and timestamps lossless, so a resumed session's final
// verdict stays bit-identical.
type SessionState struct {
	ID     string
	Mode   trajectory.Mode
	Chunks int
	Points []trajectory.Point
	Scans  []wifi.Scan
	// Contributor is the uploader identity bound at open ("" = legacy
	// anonymous); it survives snapshots and WAL replay so a resumed
	// session's accepted upload carries the same provenance.
	Contributor string
	// Rejected carries the early-exit marker across crashes: a client that
	// was told its prefix is confidently forged must still be refused after
	// recovery, not silently readmitted.
	Rejected bool
}

// Stats is the streaming slice of /v1/stats.
type Stats struct {
	// Open is the number of currently open sessions; OpenPoints the total
	// points they hold.
	Open       int `json:"open"`
	OpenPoints int `json:"open_points"`
	// Lifecycle counters since process start.
	Opened  int64 `json:"opened"`
	Closed  int64 `json:"closed"`
	Expired int64 `json:"expired"`
	Aborted int64 `json:"aborted"`
	Resumed int64 `json:"resumed"`
	// EarlyExits counts sessions rejected mid-stream on a confidently
	// forged prefix.
	EarlyExits int64 `json:"early_exits"`
	// Chunks and PointsScored count applied chunks and confidence-kernel
	// runs.
	Chunks       int64 `json:"chunks"`
	PointsScored int64 `json:"points_scored"`
}

// Manager owns the streaming sessions of one verification service.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // ids in open order (snapshot determinism)

	openPoints atomic.Int64

	opened, closed, expired, aborted atomic.Int64
	resumed, earlyExits              atomic.Int64
	chunks, pointsScored             atomic.Int64
}

// NewManager validates the config and returns an empty manager.
func NewManager(cfg Config) (*Manager, error) {
	cfg.setDefaults()
	if cfg.EarlyExit > 1 && !cfg.DisableEarlyExit {
		return nil, fmt.Errorf("stream: early-exit threshold %g must be in (0, 1]", cfg.EarlyExit)
	}
	return &Manager{cfg: cfg, sessions: make(map[string]*session)}, nil
}

// newSessionID returns a fresh random session id (clients may also supply
// their own).
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("stream: session id entropy: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Open registers a new session and returns its id (generated when empty).
// The MaxSessions gate is checked after expired sessions are discounted, so
// a burst of abandoned sessions cannot wedge admission until their ids are
// swept.
func (m *Manager) Open(id string, mode trajectory.Mode) (string, error) {
	return m.OpenAs(id, mode, "")
}

// OpenAs is Open with the uploader identity bound to the session; the
// assembled upload BeginClose returns carries it, so accepted sessions
// ingest with provenance.
func (m *Manager) OpenAs(id string, mode trajectory.Mode, contributor string) (string, error) {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		id = newSessionID()
	} else if len(id) > MaxIDLen {
		return "", ErrIDTooLong
	} else if _, dup := m.sessions[id]; dup {
		return "", ErrDuplicate
	}
	live := 0
	for _, s := range m.sessions {
		s.mu.Lock()
		expired := m.expiredAt(s, now)
		s.mu.Unlock()
		if !expired {
			live++
		}
	}
	if live >= m.cfg.MaxSessions {
		return "", ErrLimit
	}
	s := &session{id: id, mode: mode, contributor: contributor, created: now, lastActive: now}
	m.sessions[id] = s
	m.order = append(m.order, id)
	m.opened.Add(1)
	return id, nil
}

// expiredAt reports whether s is past its TTL or idle deadline. Callers
// must hold s.mu: created is immutable once the session is published, but
// lastActive is written by Buffer and BeginClose under s.mu alone, so
// reading it under m.mu only would race with a concurrent append.
func (m *Manager) expiredAt(s *session, now time.Time) bool {
	return now.Sub(s.created) > m.cfg.TTL || now.Sub(s.lastActive) > m.cfg.IdleTimeout
}

// lookup fetches a session by id.
func (m *Manager) lookup(id string) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Buffer applies chunk seq (points + their scans) to the session: the
// commit half of an append, separated from Score so the server can couple
// it with the WAL enqueue under the service mutex while the expensive
// scoring runs outside. It validates ordering, the point budget, and the
// trajectory timing rule (strictly increasing, constant interval within
// TimeTolerance — the same rule the batch decoder enforces).
//
// A replay of the last applied chunk (seq == applied-1) is acknowledged
// idempotently: replayed is true and the last ack is returned unchanged.
func (m *Manager) Buffer(id string, seq int, pts []trajectory.Point, scans []wifi.Scan) (ack Ack, replayed bool, err error) {
	s, err := m.lookup(id)
	if err != nil {
		return Ack{}, false, err
	}
	now := m.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.phase {
	case phaseRejected:
		return s.lastAck, false, ErrRejected
	case phaseClosing:
		return s.lastAck, false, ErrClosing
	}
	if m.expiredAt(s, now) {
		return s.lastAck, false, ErrExpired
	}
	// Only an actually-applied chunk can be replayed: on a fresh session
	// (chunks == 0) a seq of -1 is an ordering error, not a replay.
	if s.chunks > 0 && seq == s.chunks-1 {
		return s.lastAck, true, nil
	}
	if seq != s.chunks {
		return s.lastAck, false, &SeqError{Want: s.chunks, Got: seq}
	}
	if len(pts) == 0 {
		return s.lastAck, false, errors.New("stream: empty chunk")
	}
	if len(scans) != len(pts) {
		return s.lastAck, false, fmt.Errorf("stream: %d scans for %d points", len(scans), len(pts))
	}
	if len(s.points)+len(pts) > m.cfg.MaxPoints {
		return s.lastAck, false, ErrTooManyPoints
	}
	if err := m.checkTiming(s, pts); err != nil {
		return s.lastAck, false, err
	}
	s.points = append(s.points, pts...)
	s.scans = append(s.scans, scans...)
	if s.interval == 0 && len(s.points) >= 2 {
		s.interval = s.points[1].Time.Sub(s.points[0].Time)
	}
	s.chunks++
	s.lastActive = now
	s.lastAck = Ack{Seq: s.chunks, Points: len(s.points), Scored: s.scored}
	m.openPoints.Add(int64(len(pts)))
	m.chunks.Add(1)
	return s.lastAck, false, nil
}

// checkTiming enforces the batch decoder's trajectory timing rule across
// chunk boundaries. Called with s.mu held.
func (m *Manager) checkTiming(s *session, pts []trajectory.Point) error {
	prev := pts[0].Time
	if n := len(s.points); n > 0 {
		prev = s.points[n-1].Time
		if dt := pts[0].Time.Sub(prev); dt <= 0 {
			return fmt.Errorf("stream: %w at chunk boundary", trajectory.ErrNotMonotonic)
		}
	}
	interval := s.interval
	base := len(s.points)
	for i, p := range pts {
		if base == 0 && i == 0 {
			continue
		}
		dt := p.Time.Sub(prev)
		if dt <= 0 {
			return fmt.Errorf("stream: %w: point %d", trajectory.ErrNotMonotonic, base+i)
		}
		if interval == 0 {
			interval = dt // first step of the session fixes the cadence
		} else {
			diff := dt - interval
			if diff < 0 {
				diff = -diff
			}
			if diff > m.cfg.TimeTolerance {
				return fmt.Errorf("stream: %w: point %d step %v, want %v",
					trajectory.ErrIrregular, base+i, dt, interval)
			}
		}
		prev = p.Time
	}
	return nil
}

// Score runs the confidence kernel over every buffered-but-unscored point
// and refreshes the provisional sliding-window verdict. It takes only the
// session lock — concurrent sessions score in parallel, and the store's own
// read lock governs access to the crowdsourced history. Safe to call at any
// time; scoring is idempotent over already-scored points.
func (m *Manager) Score(id string) (Ack, error) {
	s, err := m.lookup(id)
	if err != nil {
		return Ack{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phase == phaseClosing {
		return s.lastAck, ErrClosing
	}
	det := m.cfg.Detector
	if det == nil {
		s.scored = len(s.points)
		s.lastAck.Scored = s.scored
		return s.lastAck, nil
	}
	fcfg := det.Features
	for ; s.scored < len(s.points); s.scored++ {
		i := s.scored
		// The allocation-free hot path: confidences land in the reusable
		// buffer, then move to the session arena so they survive the next
		// point.
		s.confBuf = det.Store.PointConfidencesInto(s.confBuf, s.points[i].Pos, s.scans[i], fcfg)
		start := len(s.arena)
		s.arena = append(s.arena, s.confBuf...)
		s.confs = append(s.confs, s.arena[start:len(s.arena):len(s.arena)])
		m.pointsScored.Add(1)
	}
	n := len(s.points)
	if n == 0 {
		return s.lastAck, nil
	}
	w := m.cfg.Window
	if w > n {
		w = n
	}
	lo := n - w
	win := &wifi.Upload{
		Traj:  &trajectory.T{ID: s.id, Mode: s.mode, Points: s.points[lo:n]},
		Scans: s.scans[lo:n],
	}
	feat, err := rssimap.FeaturesFrom(win, fcfg, func(i int, _ geo.Point, _ wifi.Scan) []rssimap.PointConfidence {
		return s.confs[lo+i]
	})
	if err != nil {
		return s.lastAck, fmt.Errorf("stream: window features: %w", err)
	}
	// PredictProb runs the compiled flat-forest kernel (internal/xgb
	// compile.go), so the per-chunk provisional verdict costs a contiguous
	// array walk, not a pointer-tree traversal.
	prob := det.Model.PredictProb(feat)
	s.lastAck.Scored = s.scored
	s.lastAck.ProvisionalProbFake = prob
	s.lastAck.WindowPoints = w
	if !m.cfg.DisableEarlyExit && n >= m.cfg.EarlyExitAfter && prob >= m.cfg.EarlyExit {
		s.phase = phaseRejected
		s.rejected = true
		s.lastAck.Rejected = true
		m.earlyExits.Add(1)
	}
	return s.lastAck, nil
}

// AppendChunk is Buffer followed by Score — the convenience form for
// callers without a WAL to couple the commit to.
func (m *Manager) AppendChunk(id string, seq int, pts []trajectory.Point, scans []wifi.Scan) (Ack, bool, error) {
	ack, replayed, err := m.Buffer(id, seq, pts, scans)
	if err != nil || replayed {
		return ack, replayed, err
	}
	ack, err = m.Score(id)
	return ack, false, err
}

// BeginClose freezes the session and hands back the assembled upload for
// the batch pipeline. A nil upload with ack.Rejected set means the early
// exit already rejected the session — the caller records the rejection
// without running the pipeline. The session stays registered (refusing
// appends and further closes) until Resolve or AbortClose.
func (m *Manager) BeginClose(id string) (*wifi.Upload, Ack, error) {
	s, err := m.lookup(id)
	if err != nil {
		return nil, Ack{}, err
	}
	now := m.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phase == phaseClosing {
		return nil, s.lastAck, ErrClosing
	}
	if m.expiredAt(s, now) {
		return nil, s.lastAck, ErrExpired
	}
	s.lastActive = now
	if s.phase == phaseRejected {
		s.phase = phaseClosing
		return nil, s.lastAck, nil
	}
	s.phase = phaseClosing
	u := &wifi.Upload{
		Traj:        &trajectory.T{ID: s.id, Mode: s.mode, Points: s.points},
		Scans:       s.scans,
		Contributor: s.contributor,
	}
	return u, s.lastAck, nil
}

// AbortClose returns a closing session to the open phase (used when the
// assembled upload fails validation, so the client can append the missing
// points and retry). A session the early exit already rejected returns to
// the rejected phase instead — aborting a close never readmits appends.
func (m *Manager) AbortClose(id string) {
	s, err := m.lookup(id)
	if err != nil {
		return
	}
	s.mu.Lock()
	if s.phase == phaseClosing {
		if s.rejected {
			s.phase = phaseRejected
		} else {
			s.phase = phaseOpen
		}
	}
	s.mu.Unlock()
}

// Resolve removes a closing session whose verdict has been recorded.
func (m *Manager) Resolve(id string) {
	if m.remove(id) {
		m.closed.Add(1)
	}
}

// Evict removes a session without a verdict (expiry or restart-abort) and
// reports whether it existed.
func (m *Manager) Evict(id string, expired bool) bool {
	ok := m.remove(id)
	if ok {
		if expired {
			m.expired.Add(1)
		} else {
			m.aborted.Add(1)
		}
	}
	return ok
}

// remove deletes a session from the registry.
func (m *Manager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return false
	}
	delete(m.sessions, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.openPoints.Add(-int64(len(s.points)))
	return true
}

// ExpiredIDs lists the sessions past their deadlines, in open order. The
// server sweeps them through its WAL-journaled eviction path.
func (m *Manager) ExpiredIDs() []string {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []string
	for _, id := range m.order {
		s := m.sessions[id]
		s.mu.Lock()
		expired := s.phase != phaseClosing && m.expiredAt(s, now)
		s.mu.Unlock()
		if expired {
			ids = append(ids, id)
		}
	}
	return ids
}

// Registered reports whether id is still in the session table (open,
// rejected, or closing — anything not yet resolved or evicted).
func (m *Manager) Registered(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sessions[id]
	return ok
}

// OpenCount returns the number of registered sessions.
func (m *Manager) OpenCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// RetryAfter is the admission hint for a refused Open: the idle timeout is
// the longest a stale session can hold a slot.
func (m *Manager) RetryAfter() time.Duration {
	return m.cfg.IdleTimeout
}

// Stats snapshots the lifecycle counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	open := len(m.sessions)
	m.mu.Unlock()
	return Stats{
		Open:         open,
		OpenPoints:   int(m.openPoints.Load()),
		Opened:       m.opened.Load(),
		Closed:       m.closed.Load(),
		Expired:      m.expired.Load(),
		Aborted:      m.aborted.Load(),
		Resumed:      m.resumed.Load(),
		EarlyExits:   m.earlyExits.Load(),
		Chunks:       m.chunks.Load(),
		PointsScored: m.pointsScored.Load(),
	}
}

// SnapshotSessions captures every in-flight session in open order — the
// slice compaction persists so sessions survive a log reset. Closing
// sessions are included: a crash between snapshot and verdict frame must
// not lose their buffered chunks.
func (m *Manager) SnapshotSessions() []SessionState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SessionState, 0, len(m.sessions))
	for _, id := range m.order {
		s := m.sessions[id]
		s.mu.Lock()
		out = append(out, SessionState{
			ID:          s.id,
			Mode:        s.mode,
			Chunks:      s.chunks,
			Points:      append([]trajectory.Point(nil), s.points...),
			Scans:       cloneScans(s.scans),
			Rejected:    s.rejected,
			Contributor: s.contributor,
		})
		s.mu.Unlock()
	}
	return out
}

func cloneScans(scans []wifi.Scan) []wifi.Scan {
	out := make([]wifi.Scan, len(scans))
	for i, sc := range scans {
		out[i] = sc.Clone()
	}
	return out
}

// RestoreSession resumes a recovered in-flight session: the buffered
// points are re-registered (scoring restarts lazily from the recovered
// store on the next Score), and the chunk cursor continues where the
// client left off. The session's clocks restart at recovery time. Limits
// are enforced — a session the restarted configuration cannot hold is
// refused, and the caller aborts it cleanly.
func (m *Manager) RestoreSession(st SessionState) error {
	if len(st.Points) > m.cfg.MaxPoints {
		return ErrTooManyPoints
	}
	if len(st.Scans) != len(st.Points) {
		return fmt.Errorf("stream: restore %s: %d scans for %d points", st.ID, len(st.Scans), len(st.Points))
	}
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sessions[st.ID]; dup {
		return ErrDuplicate
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		return ErrLimit
	}
	s := &session{
		id:          st.ID,
		mode:        st.Mode,
		contributor: st.Contributor,
		points:      append([]trajectory.Point(nil), st.Points...),
		scans:       cloneScans(st.Scans),
		chunks:      st.Chunks,
		created:     now,
		lastActive:  now,
	}
	if len(s.points) >= 2 {
		s.interval = s.points[1].Time.Sub(s.points[0].Time)
	}
	s.lastAck = Ack{Seq: s.chunks, Points: len(s.points)}
	if st.Rejected {
		// The early exit fired before the crash and the client was told so;
		// resume refusing appends, and Close records the rejection without
		// the pipeline. (The provisional probability is not recovered — the
		// journaled marker carries only the decision.)
		s.phase = phaseRejected
		s.rejected = true
		s.lastAck.Rejected = true
	}
	m.sessions[st.ID] = s
	m.order = append(m.order, st.ID)
	m.openPoints.Add(int64(len(s.points)))
	m.resumed.Add(1)
	return nil
}
