package stream

import (
	"errors"
	"testing"
	"time"
)

// TestSlowChunkSessionStraddlesTTL pins the absolute-TTL rule for a
// session that never goes idle: a client streaming chunks slowly enough
// keeps refreshing the idle deadline, but once the session's total
// lifetime crosses the TTL the next append must be refused with
// ErrExpired (410 over HTTP) and the ack must be the unchanged previous
// one — an expired session must never leak a partial verdict.
func TestSlowChunkSessionStraddlesTTL(t *testing.T) {
	clk := &fakeClock{now: t0}
	m := newManager(t, Config{
		TTL: 5 * time.Minute, IdleTimeout: time.Hour,
		Clock: clk.Now,
	})
	u := walkUpload(t, 17, 12)
	id, err := m.Open("slow", u.Traj.Mode)
	if err != nil {
		t.Fatal(err)
	}

	// Three chunks, two minutes apart: each append lands inside the TTL
	// and refreshes the idle deadline, so only the absolute TTL can fire.
	var lastAck Ack
	for seq := 0; seq < 3; seq++ {
		lo, hi := seq*3, (seq+1)*3
		ack, replayed, err := m.AppendChunk(id, seq, u.Traj.Points[lo:hi], u.Scans[lo:hi])
		if err != nil || replayed {
			t.Fatalf("chunk %d at %v: err=%v replayed=%v", seq, clk.Now().Sub(t0), err, replayed)
		}
		lastAck = ack
		clk.Advance(2 * time.Minute)
	}
	// t = 6m > TTL = 5m, idle deadline still fresh (last append 2m ago).
	ack, replayed, err := m.AppendChunk(id, 3, u.Traj.Points[9:12], u.Scans[9:12])
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("append past TTL = %v, want ErrExpired", err)
	}
	if replayed {
		t.Fatal("expired append reported as replay")
	}
	if ack != lastAck {
		t.Fatalf("expired append changed the ack: %+v vs %+v", ack, lastAck)
	}

	// Closing must not produce a verdict either — no partial verdict from
	// the buffered 9 points.
	if _, _, err := m.BeginClose(id); !errors.Is(err, ErrExpired) {
		t.Fatalf("close past TTL = %v, want ErrExpired", err)
	}

	// The session is sweepable and the eviction counts as an expiry.
	ids := m.ExpiredIDs()
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("expired ids = %v, want [%s]", ids, id)
	}
	if !m.Evict(id, true) {
		t.Fatal("evict failed")
	}
	if st := m.Stats(); st.Expired != 1 || st.Open != 0 {
		t.Fatalf("stats after sweep = %+v", st)
	}
	// After eviction the id is unknown, not expired.
	if _, _, err := m.AppendChunk(id, 3, u.Traj.Points[9:12], u.Scans[9:12]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append after eviction = %v, want ErrNotFound", err)
	}
}
