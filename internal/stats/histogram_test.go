package stats

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketsCoverRange checks the index/upper-bound pair: every
// value lands in a bucket whose upper bound is >= the value and within the
// relative-error budget.
func TestHistogramBucketsCoverRange(t *testing.T) {
	probe := []int64{0, 1, 15, 16, 17, 31, 32, 100, 999, 1 << 20, (1 << 40) + 12345, 1<<62 + 7}
	for _, v := range probe {
		idx := histIndex(v)
		up := histUpper(idx)
		if up < v {
			t.Fatalf("value %d: bucket %d upper bound %d below the value", v, idx, up)
		}
		if v >= histSub && float64(up-v) > float64(v)/histSub {
			t.Fatalf("value %d: upper bound %d overshoots by more than 1/%d", v, up, histSub)
		}
		if idx > 0 && histUpper(idx-1) >= v {
			t.Fatalf("value %d: previous bucket %d already covers it", v, idx-1)
		}
	}
}

// TestHistogramQuantiles compares histogram quantiles to exact ones over a
// heavy-tailed sample; the log-bucket error bound must hold.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h LatencyHistogram
	vals := make([]int64, 5000)
	for i := range vals {
		v := int64(rng.ExpFloat64() * 2e6) // microsecond-to-second spread
		vals[i] = v
		h.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q).Nanoseconds()
		if got < exact {
			t.Fatalf("q%.2f = %d below exact %d (quantiles must not under-state)", q, got, exact)
		}
		if exact > histSub && float64(got) > float64(exact)*1.2 {
			t.Fatalf("q%.2f = %d overshoots exact %d by more than 20%%", q, got, exact)
		}
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
}

// TestHistogramQuantileSmallSample pins nearest-rank behaviour on tiny
// counts: the p99 of six samples is the sixth (largest) sample, so a
// single slow outlier must show. A truncated rank would report the fifth
// sample and place p99 below the mean.
func TestHistogramQuantileSmallSample(t *testing.T) {
	var h LatencyHistogram
	for _, us := range []int64{6, 8, 10, 15, 20, 1000} {
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	if got := h.Quantile(0.99); got < 1000*time.Microsecond {
		t.Fatalf("p99 of 6 samples = %v, must cover the 1ms outlier", got)
	}
	if got := h.Quantile(0.5); got.Nanoseconds() > histUpper(histIndex(15000)) {
		t.Fatalf("p50 of 6 samples = %v, want <= the 3rd sample's bucket", got)
	}
	if got := h.Quantile(1); got < 1000*time.Microsecond {
		t.Fatalf("p100 = %v, must cover the max", got)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while a
// reader polls quantiles; run under -race to pin lock-freedom.
func TestHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
			}
		}
	}()
	const writers, per = 8, 2000
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*1000 + i))
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count = %d, want %d", h.Count(), writers*per)
	}
}
