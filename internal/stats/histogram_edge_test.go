package stats

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramEmpty pins the zero-value contract: no observations means
// zero quantiles, zero count, zero sum — not a panic, not a stale bucket.
func TestHistogramEmpty(t *testing.T) {
	var h LatencyHistogram
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram q%.3f = %v, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram count %d sum %v", h.Count(), h.Sum())
	}
}

// TestHistogramSingleSample: with one observation, every quantile is that
// sample (its bucket upper bound — never understated, within the
// sub-bucket error budget).
func TestHistogramSingleSample(t *testing.T) {
	var h LatencyHistogram
	const v = 1234567 * time.Nanosecond
	h.Observe(v)
	for _, q := range []float64{0.001, 0.25, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < v {
			t.Fatalf("q%.3f = %v understates the single sample %v", q, got, v)
		}
		if float64(got) > float64(v)*(1+1.0/histSub) {
			t.Fatalf("q%.3f = %v overshoots %v beyond a sub-bucket", q, got, v)
		}
	}
	if h.Count() != 1 || h.Sum() != v {
		t.Fatalf("count %d sum %v after one observe", h.Count(), h.Sum())
	}
}

// TestHistogramBeyondTopOctave feeds durations at and beyond the top
// octave — 1<<62 and MaxInt64 nanoseconds (~292 years) — and checks the
// bucket math neither panics, overflows negative, nor understates. The
// very top bucket's inclusive upper bound is exactly MaxInt64.
func TestHistogramBeyondTopOctave(t *testing.T) {
	var h LatencyHistogram
	huge := []time.Duration{1 << 62, math.MaxInt64 - 1, math.MaxInt64}
	for _, v := range huge {
		h.Observe(v)
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("p100 of MaxInt64 sample = %v (%d), want MaxInt64", got, got.Nanoseconds())
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got < 0 {
			t.Fatalf("q%.2f went negative (%d): bucket bound overflow", q, got.Nanoseconds())
		}
		if got := h.Quantile(q); got < 1<<62 {
			t.Fatalf("q%.2f = %v understates the smallest huge sample", q, got)
		}
	}
	if h.Count() != int64(len(huge)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(huge))
	}

	// Negative durations clamp to zero rather than indexing below bucket 0.
	var neg LatencyHistogram
	neg.Observe(-time.Second)
	if got := neg.Quantile(1); got != 0 {
		t.Fatalf("negative observation mapped to %v, want clamp to 0", got)
	}
}

// TestHistogramConcurrentExtremes records values spanning the full bucket
// range from several writers while readers poll quantiles, count, and sum.
// Under -race this pins lock-freedom on the extreme-value paths; the
// readers additionally assert invariants that must hold mid-flight:
// quantiles are never negative and the count never decreases.
func TestHistogramConcurrentExtremes(t *testing.T) {
	var h LatencyHistogram
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastCount int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q := h.Quantile(0.99); q < 0 {
					t.Errorf("mid-flight p99 negative: %v", q)
					return
				}
				if c := h.Count(); c < lastCount {
					t.Errorf("count went backwards: %d after %d", c, lastCount)
					return
				} else {
					lastCount = c
				}
				_ = h.Sum()
			}
		}()
	}
	vals := []time.Duration{0, 1, 15, 16, 1 << 20, 1 << 40, 1 << 62, math.MaxInt64, -1}
	const writers, per = 4, 3000
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				h.Observe(vals[(g+i)%len(vals)])
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	readers.Wait()
	if h.Count() != writers*per {
		t.Fatalf("count = %d, want %d", h.Count(), writers*per)
	}
}
