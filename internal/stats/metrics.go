package stats

import (
	"fmt"
	"sort"
)

// Confusion is a binary-classification confusion matrix. The positive class
// follows the paper's convention for detectors: "fake" is the positive class
// a detector tries to catch.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one (predicted, actual) pair.
func (c *Confusion) Observe(predictedPositive, actualPositive bool) {
	switch {
	case predictedPositive && actualPositive:
		c.TP++
	case predictedPositive && !actualPositive:
		c.FP++
	case !predictedPositive && actualPositive:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of observations recorded.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when no positive predictions exist.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no actual positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p := c.Precision()
	r := c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Confusion) String() string {
	return fmt.Sprintf("acc=%.4f prec=%.4f rec=%.4f f1=%.4f (tp=%d fp=%d tn=%d fn=%d)",
		c.Accuracy(), c.Precision(), c.Recall(), c.F1(), c.TP, c.FP, c.TN, c.FN)
}

// AUC computes the area under the ROC curve from scores of positive and
// negative examples (higher score = more positive). It is the
// Mann-Whitney U statistic: the probability that a random positive outranks
// a random negative, with ties counting half. Empty inputs yield 0.5.
func AUC(posScores, negScores []float64) float64 {
	if len(posScores) == 0 || len(negScores) == 0 {
		return 0.5
	}
	// Sort-based O((m+n) log(m+n)) ranking.
	type scored struct {
		v   float64
		pos bool
	}
	all := make([]scored, 0, len(posScores)+len(negScores))
	for _, v := range posScores {
		all = append(all, scored{v, true})
	}
	for _, v := range negScores {
		all = append(all, scored{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign average ranks within tie groups and sum the positive ranks.
	var rankSum float64
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 .. j) average
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	m := float64(len(posScores))
	n := float64(len(negScores))
	u := rankSum - m*(m+1)/2
	return u / (m * n)
}
