package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/short inputs must yield 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Quantile must not mutate its input.
	xs2 := []float64{5, 1, 3}
	Quantile(xs2, 0.5)
	if xs2[0] != 5 || xs2[1] != 1 || xs2[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty Summarize = %+v", z)
	}
	if s.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

func TestNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = Normal(rng, 10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.1 {
		t.Fatalf("mean = %v, want ~10", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.1 {
		t.Fatalf("sd = %v, want ~2", sd)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		x := TruncNormal(rng, 0, 5, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("sample %v outside [-1,1]", x)
		}
	}
	// Pathological bounds must clamp, not loop forever.
	if x := TruncNormal(rng, 0, 0.001, 50, 60); x != 50 {
		t.Fatalf("clamp = %v, want 50", x)
	}
}

func TestGaussMarkovCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rho = 0.9
	xs := GaussMarkov(rng, 50000, 1, rho)
	// Empirical lag-1 autocorrelation should be close to rho.
	var num, den float64
	m := Mean(xs)
	for i := 1; i < len(xs); i++ {
		num += (xs[i] - m) * (xs[i-1] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if got := num / den; math.Abs(got-rho) > 0.02 {
		t.Fatalf("lag-1 autocorr = %v, want ~%v", got, rho)
	}
	if sd := StdDev(xs); math.Abs(sd-1) > 0.05 {
		t.Fatalf("stationary sd = %v, want ~1", sd)
	}
	if GaussMarkov(rng, 0, 1, 0.5) != nil {
		t.Fatal("n=0 must return nil")
	}
}

func TestField2DConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewField2D(rng, FieldConfig{Width: 0, Height: 10, CorrLength: 5, StdDev: 1}); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := NewField2D(rng, FieldConfig{Width: 10, Height: 10, CorrLength: 0, StdDev: 1}); err == nil {
		t.Fatal("zero correlation length must error")
	}
}

func TestField2DSpatialCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f, err := NewField2D(rng, FieldConfig{Width: 200, Height: 200, CorrLength: 10, StdDev: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Nearby points must be much closer in value than far-apart points.
	var nearDiff, farDiff float64
	const trials = 500
	for i := 0; i < trials; i++ {
		x := 20 + rng.Float64()*160
		y := 20 + rng.Float64()*160
		nearDiff += math.Abs(f.At(x, y) - f.At(x+1, y+1))
		farDiff += math.Abs(f.At(x, y) - f.At(math.Mod(x+97, 200), math.Mod(y+131, 200)))
	}
	nearDiff /= trials
	farDiff /= trials
	if nearDiff >= farDiff/2 {
		t.Fatalf("near diff %v not << far diff %v; field not spatially correlated", nearDiff, farDiff)
	}
}

func TestField2DStdDevAndClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f, err := NewField2D(rng, FieldConfig{Width: 300, Height: 300, CorrLength: 8, StdDev: 4})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		xs = append(xs, f.At(rng.Float64()*300, rng.Float64()*300))
	}
	if sd := StdDev(xs); sd < 2 || sd > 6 {
		t.Fatalf("field sd = %v, want ~4", sd)
	}
	// Out-of-range evaluation must clamp, not panic.
	_ = f.At(-100, -100)
	_ = f.At(1e6, 1e6)
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FP, 9 TN, 1 FN
	for i := 0; i < 8; i++ {
		c.Observe(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Observe(true, false)
	}
	for i := 0; i < 9; i++ {
		c.Observe(false, false)
	}
	c.Observe(false, true)

	if c.Total() != 20 {
		t.Fatalf("total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/9.0) > 1e-12 {
		t.Fatalf("recall = %v", got)
	}
	wantF1 := 2 * 0.8 * (8.0 / 9.0) / (0.8 + 8.0/9.0)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Fatalf("f1 = %v, want %v", got, wantF1)
	}
	if c.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

func TestConfusionEmptyAndDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must yield zero metrics")
	}
	c.Observe(false, false)
	if c.Precision() != 0 || c.Recall() != 0 {
		t.Fatal("degenerate confusion must not divide by zero")
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{0.9, 0.8}, []float64{0.1, 0.2}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Perfectly wrong.
	if got := AUC([]float64{0.1, 0.2}, []float64{0.8, 0.9}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All tied: 0.5.
	if got := AUC([]float64{0.5, 0.5}, []float64{0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Empty inputs: 0.5 by convention.
	if AUC(nil, []float64{1}) != 0.5 || AUC([]float64{1}, nil) != 0.5 {
		t.Fatal("empty AUC convention broken")
	}
	// Known mixed case: pos {0.8, 0.4}, neg {0.6, 0.2}.
	// Pairs: (0.8>0.6)=1, (0.8>0.2)=1, (0.4<0.6)=0, (0.4>0.2)=1 -> 3/4.
	if got := AUC([]float64{0.8, 0.4}, []float64{0.6, 0.2}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("mixed AUC = %v", got)
	}
}

func TestAUCMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pos := make([]float64, 1+rng.Intn(20))
		neg := make([]float64, 1+rng.Intn(20))
		for i := range pos {
			pos[i] = math.Round(rng.Float64()*10) / 10 // force ties
		}
		for i := range neg {
			neg[i] = math.Round(rng.Float64()*10) / 10
		}
		var wins float64
		for _, p := range pos {
			for _, n := range neg {
				switch {
				case p > n:
					wins++
				case p == n:
					wins += 0.5
				}
			}
		}
		brute := wins / float64(len(pos)*len(neg))
		return math.Abs(AUC(pos, neg)-brute) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
