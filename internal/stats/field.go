package stats

import (
	"fmt"
	"math/rand"
)

// Field2D is a spatially correlated Gaussian random field over a rectangle.
// It is built from i.i.d. Gaussian lattice values smoothed by repeated box
// blurs (approximating a Gaussian kernel) and rescaled to a target standard
// deviation, then evaluated with bilinear interpolation. The WiFi shadowing
// model uses one Field2D per access point so that nearby positions observe
// similar — but not identical — received signal strengths, the property the
// paper's defense exploits.
type Field2D struct {
	w, h    int     // lattice size
	cell    float64 // metres per lattice cell
	originX float64
	originY float64
	values  []float64
}

// FieldConfig configures NewField2D.
type FieldConfig struct {
	// Width and Height of the covered rectangle in metres.
	Width, Height float64
	// OriginX, OriginY is the south-west corner of the rectangle.
	OriginX, OriginY float64
	// CorrLength is the spatial correlation length in metres; values a
	// CorrLength apart are strongly correlated, values several CorrLength
	// apart are nearly independent.
	CorrLength float64
	// StdDev is the stationary standard deviation of the field.
	StdDev float64
}

// NewField2D samples a correlated field. It returns an error when the
// configuration is degenerate.
func NewField2D(rng *rand.Rand, cfg FieldConfig) (*Field2D, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("stats: field area %gx%g must be positive", cfg.Width, cfg.Height)
	}
	if cfg.CorrLength <= 0 {
		return nil, fmt.Errorf("stats: correlation length %g must be positive", cfg.CorrLength)
	}
	// Lattice resolution: 2 cells per correlation length gives smooth
	// interpolation without excessive memory.
	cell := cfg.CorrLength / 2
	w := int(cfg.Width/cell) + 3
	h := int(cfg.Height/cell) + 3

	values := make([]float64, w*h)
	for i := range values {
		values[i] = rng.NormFloat64()
	}
	// Three box blurs with radius ~ corrLength/cell approximate a Gaussian
	// kernel of that scale.
	radius := 2 // cells; cell = corrLength/2, so radius covers one corrLength
	for pass := 0; pass < 3; pass++ {
		values = boxBlur(values, w, h, radius)
	}
	// Rescale to the requested standard deviation.
	sd := StdDev(values)
	if sd > 0 {
		scale := cfg.StdDev / sd
		for i := range values {
			values[i] *= scale
		}
	}
	return &Field2D{
		w: w, h: h,
		cell:    cell,
		originX: cfg.OriginX,
		originY: cfg.OriginY,
		values:  values,
	}, nil
}

// boxBlur applies a separable box filter of the given radius in cells.
func boxBlur(v []float64, w, h, radius int) []float64 {
	tmp := make([]float64, len(v))
	// Horizontal pass.
	for y := 0; y < h; y++ {
		row := v[y*w : (y+1)*w]
		out := tmp[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			var sum float64
			var n int
			for dx := -radius; dx <= radius; dx++ {
				xx := x + dx
				if xx < 0 || xx >= w {
					continue
				}
				sum += row[xx]
				n++
			}
			out[x] = sum / float64(n)
		}
	}
	// Vertical pass.
	out := make([]float64, len(v))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum float64
			var n int
			for dy := -radius; dy <= radius; dy++ {
				yy := y + dy
				if yy < 0 || yy >= h {
					continue
				}
				sum += tmp[yy*w+x]
				n++
			}
			out[y*w+x] = sum / float64(n)
		}
	}
	return out
}

// At evaluates the field at (x, y) metres using bilinear interpolation.
// Points outside the covered rectangle clamp to the boundary.
func (f *Field2D) At(x, y float64) float64 {
	gx := (x - f.originX) / f.cell
	gy := (y - f.originY) / f.cell
	if gx < 0 {
		gx = 0
	}
	if gy < 0 {
		gy = 0
	}
	maxX := float64(f.w - 1)
	maxY := float64(f.h - 1)
	if gx > maxX {
		gx = maxX
	}
	if gy > maxY {
		gy = maxY
	}
	x0 := int(gx)
	y0 := int(gy)
	x1 := x0 + 1
	y1 := y0 + 1
	if x1 >= f.w {
		x1 = f.w - 1
	}
	if y1 >= f.h {
		y1 = f.h - 1
	}
	fx := gx - float64(x0)
	fy := gy - float64(y0)

	v00 := f.values[y0*f.w+x0]
	v10 := f.values[y0*f.w+x1]
	v01 := f.values[y1*f.w+x0]
	v11 := f.values[y1*f.w+x1]
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}
