// Package stats provides the statistical plumbing shared across the
// simulator and the detectors: summary statistics, distribution sampling,
// spatially correlated Gaussian fields (used by the WiFi shadowing model),
// and binary-classification metrics.
//
// All sampling takes an explicit *rand.Rand so that every experiment in the
// repository is deterministic given a seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P10    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P10:    Quantile(xs, 0.10),
		Median: Quantile(xs, 0.50),
		P90:    Quantile(xs, 0.90),
		Max:    Max(xs),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p10=%.3f med=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P10, s.Median, s.P90, s.Max)
}

// Normal samples from N(mean, sd^2).
func Normal(rng *rand.Rand, mean, sd float64) float64 {
	return mean + sd*rng.NormFloat64()
}

// TruncNormal samples from N(mean, sd^2) truncated to [lo, hi] by rejection;
// after 64 rejected draws it clamps, which keeps the function total even for
// pathological bounds.
func TruncNormal(rng *rand.Rand, mean, sd, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := Normal(rng, mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Max(lo, math.Min(hi, mean))
}

// GaussMarkov generates a first-order autocorrelated Gaussian series of
// length n with stationary standard deviation sd and one-step correlation
// rho in [0, 1). It models slowly wandering GPS error.
func GaussMarkov(rng *rand.Rand, n int, sd, rho float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	out[0] = Normal(rng, 0, sd)
	innov := sd * math.Sqrt(1-rho*rho)
	for i := 1; i < n; i++ {
		out[i] = rho*out[i-1] + Normal(rng, 0, innov)
	}
	return out
}
