package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHistogram is a lock-free log-bucketed duration histogram for hot
// paths: Observe is a couple of atomic adds, and quantiles are read by
// scanning the bucket counts without stopping writers. Buckets are
// logarithmic with 16 linear sub-buckets per power of two, so any
// reported quantile is within ~6.25% of the true value — plenty for
// telemetry, with a fixed footprint and no allocation after construction.
//
// The zero value is ready to use.
type LatencyHistogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave
	// 64-bit nanosecond values need (63-histSubBits) octaves above the
	// initial linear range of [0, histSub).
	histBuckets = (63-histSubBits+1)*histSub + histSub
)

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // highest set bit, >= histSubBits
	top := k - histSubBits
	return (top+1)*histSub + int((v>>top)&(histSub-1))
}

// histUpper is the inclusive upper bound of bucket idx — the value a
// quantile read reports, so quantiles never under-state latency.
func histUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	top := idx/histSub - 1
	lo := (int64(histSub) + int64(idx%histSub)) << top
	return lo + (1 << top) - 1
}

// Observe records one duration. Negative durations clamp to zero.
func (h *LatencyHistogram) Observe(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns how many durations have been observed.
func (h *LatencyHistogram) Count() int64 { return h.total.Load() }

// Sum returns the cumulative observed time.
func (h *LatencyHistogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations, within one sub-bucket (~6.25%) of the true value.
// It returns 0 when nothing has been observed. Concurrent observes make
// the answer approximate, never a panic.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n <= 0 {
		return 0
	}
	// Nearest-rank: the smallest value with at least ceil(q*n) observations
	// at or below it. Truncating instead of ceiling would drop a rank and
	// report p99 of a 6-sample set as the 5th value, not the max.
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= target {
			return time.Duration(histUpper(i))
		}
	}
	// Writers raced the scan past every bucket we read; report the top.
	return time.Duration(histUpper(histBuckets - 1))
}
