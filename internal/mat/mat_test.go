package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(0, 3)
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 5 // Row shares storage by contract
	if m.At(1, 0) != 5 {
		t.Fatal("Row must share storage")
	}
}

func TestCloneAndZero(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 3)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone shares storage")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMulVec(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	m.MulVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec = %v", dst)
	}
	m.MulVecAdd(dst, x)
	if dst[0] != -4 || dst[1] != -4 {
		t.Fatalf("MulVecAdd = %v", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 2}
	dst := make([]float64, 3)
	m.MulVecT(dst, x)
	want := []float64{9, 12, 15}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

// MulVecT is the adjoint of MulVec: <Mx, y> == <x, Mᵀy>.
func TestMulVecAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := New(r, c)
		m.FillUniform(rng, 2)
		x := make([]float64, c)
		y := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		mx := make([]float64, r)
		m.MulVec(mx, x)
		mty := make([]float64, c)
		m.MulVecT(mty, y)
		return math.Abs(Dot(mx, y)-Dot(x, mty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddOuter(t *testing.T) {
	m := New(2, 2)
	m.AddOuter([]float64{1, 2}, []float64{3, 4})
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestAddScaled(t *testing.T) {
	m := New(1, 2)
	o := New(1, 2)
	copy(o.Data, []float64{2, 4})
	m.AddScaled(o, 0.5)
	if m.Data[0] != 1 || m.Data[1] != 2 {
		t.Fatalf("AddScaled = %v", m.Data)
	}
}

func TestVectorHelpers(t *testing.T) {
	dst := []float64{1, 1}
	Axpy(dst, 2, []float64{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("Axpy = %v", dst)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
}

func TestShapePanics(t *testing.T) {
	m := New(2, 3)
	for name, fn := range map[string]func(){
		"MulVec":    func() { m.MulVec(make([]float64, 2), make([]float64, 2)) },
		"MulVecAdd": func() { m.MulVecAdd(make([]float64, 1), make([]float64, 3)) },
		"MulVecT":   func() { m.MulVecT(make([]float64, 2), make([]float64, 3)) },
		"AddOuter":  func() { m.AddOuter(make([]float64, 3), make([]float64, 3)) },
		"AddScaled": func() { m.AddScaled(New(3, 2), 1) },
		"Axpy":      func() { Axpy(make([]float64, 1), 1, make([]float64, 2)) },
		"Dot":       func() { Dot(make([]float64, 1), make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(1000) != 1 || Sigmoid(-1000) != 0 {
		t.Fatal("Sigmoid not saturating stably")
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		if math.Abs(Sigmoid(-x)-(1-Sigmoid(x))) > 1e-12 {
			t.Fatalf("symmetry broken at %v", x)
		}
	}
	if Tanh(0.5) != math.Tanh(0.5) {
		t.Fatal("Tanh wrapper broken")
	}
}

func TestFillUniform(t *testing.T) {
	m := New(10, 10)
	m.FillUniform(rand.New(rand.NewSource(1)), 0.5)
	for _, v := range m.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("value %v outside scale", v)
		}
	}
	var allZero = true
	for _, v := range m.Data {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("FillUniform produced all zeros")
	}
}
