// Package mat provides the small dense linear-algebra kernels used by the
// neural-network substrate: row-major matrices, matrix-vector products and
// their transposes, outer-product accumulation, and element-wise helpers.
// It is deliberately minimal — just what an LSTM with BPTT needs — and
// allocation-conscious: all hot-path operations write into caller-provided
// destinations.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set writes the element at (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a shared slice.
func (m *Mat) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FillUniform fills m with samples from U(-scale, scale).
func (m *Mat) FillUniform(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// MulVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst is overwritten.
func (m *Mat) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec shape mismatch: %dx%d * %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var sum float64
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] = sum
	}
}

// MulVecAdd computes dst += m * x.
func (m *Mat) MulVecAdd(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecAdd shape mismatch: %dx%d * %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var sum float64
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] += sum
	}
}

// MulVecT computes dst += mᵀ * x (the backward pass of MulVec). x must have
// length m.Rows and dst length m.Cols.
func (m *Mat) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch: (%dx%d)T * %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			dst[c] += xr * v
		}
	}
}

// AddOuter accumulates m += a ⊗ b (outer product). a must have length
// m.Rows and b length m.Cols.
func (m *Mat) AddOuter(a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuter shape mismatch: %d x %d into %dx%d",
			len(a), len(b), m.Rows, m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		ar := a[r]
		if ar == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c := range row {
			row[c] += ar * b[c]
		}
	}
}

// AddScaled accumulates m += s * other.
func (m *Mat) AddScaled(other *Mat, s float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// Axpy computes dst += s * x element-wise for vectors.
func Axpy(dst []float64, s float64, x []float64) {
	if len(dst) != len(x) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += s * v
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Sigmoid returns 1/(1+e^-x), computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Tanh is math.Tanh, re-exported for symmetry.
func Tanh(x float64) float64 { return math.Tanh(x) }
