package fsx

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOSFSRoundtrip exercises every FS method against a real directory, so
// the seam is known-good before fault-injecting wrappers build on it.
func TestOSFSRoundtrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(sub, "data.bin")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("WORLD"), 6); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 11 {
		t.Fatalf("size = %d, want 11", info.Size())
	}
	var buf [5]byte
	if _, err := f.ReadAt(buf[:], 6); err != nil {
		t.Fatal(err)
	}
	if string(buf[:]) != "WORLD" {
		t.Fatalf("ReadAt = %q", buf)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("ReadFile = %q", data)
	}

	moved := filepath.Join(sub, "moved.bin")
	if err := OS.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	g, err := OS.Open(moved)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Open(moved); err == nil {
		t.Fatal("removed file still opens")
	}
}
