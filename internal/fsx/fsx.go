// Package fsx is the filesystem seam of the durability layer. Everything
// the WAL and snapshot code does to disk goes through the FS interface, so
// tests can substitute a fault-injecting implementation (fsx/faultfs) that
// fails the Nth write, tears a frame in half, or reports a full disk — the
// crash states a provider serving millions of uploads will eventually see,
// reproduced deterministically on a laptop.
//
// The interface is deliberately the narrow waist of what the durability
// code actually uses — open/read/write/truncate/sync on files, rename,
// read-file, mkdir-all, and directory fsync — not a general VFS.
package fsx

import (
	"io"
	"os"
)

// File is the slice of *os.File the durability layer uses.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	io.Seeker
	io.Closer
	// Stat returns file metadata (the WAL only uses the size).
	Stat() (os.FileInfo, error)
	// Truncate resizes the file.
	Truncate(size int64) error
	// Sync flushes the file contents to stable storage.
	Sync() error
}

// FS is the filesystem operations surface of the durability layer.
type FS interface {
	// OpenFile opens name with the given flags, creating it when
	// os.O_CREATE is set.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadFile reads the whole of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making renames and creations
	// inside it durable against power loss.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
