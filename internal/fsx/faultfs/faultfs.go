// Package faultfs wraps an fsx.FS with deterministic fault injection.
//
// Every mutating operation — create, write, truncate, sync, rename,
// remove, mkdir, directory sync — is recorded with a monotonically
// increasing sequence number, and a configured fault plan can fail exactly
// the Nth one: with a generic injected error, with ENOSPC, or (for writes)
// with a torn write that persists a seeded prefix of the buffer before
// failing — the on-disk state a power cut mid-write leaves behind.
//
// With Options.Crash set, the first injected fault drops the filesystem
// into a crashed state in which every later mutating operation fails with
// ErrCrashed while reads keep working; the process under test limps along
// exactly like one whose disk just died, and a recovery harness then
// reopens the directory with a clean FS to assert what survived. Because
// the fault site is an operation index and torn-write lengths derive only
// from (seed, sequence), a crash-point explorer can enumerate every
// recorded site and replay the workload against each one deterministically.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"

	"trajforge/internal/fsx"
)

// ErrInjected is the error returned at a planned fault site.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every mutating operation after a crashing
// fault has fired.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// ErrWedged is returned by every mutating operation while the filesystem
// is wedged (see FS.Wedge). Unlike a crash, a wedge is reversible: Heal
// restores normal operation.
var ErrWedged = errors.New("faultfs: filesystem wedged")

// OpKind classifies a mutating operation.
type OpKind int

const (
	// OpAny matches every kind in Options.FailKind filters.
	OpAny OpKind = iota
	OpCreate
	OpWrite
	OpTruncate
	OpSync
	OpRename
	OpRemove
	OpMkdir
	OpSyncDir
)

var opNames = [...]string{"any", "create", "write", "truncate", "sync", "rename", "remove", "mkdir", "syncdir"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one recorded mutating operation.
type Op struct {
	// Seq is the 1-based index among all mutating operations.
	Seq int
	// Kind classifies the operation.
	Kind OpKind
	// Path is the file or directory operated on.
	Path string
	// Bytes is the buffer length for writes, 0 otherwise.
	Bytes int
	// Faulted reports whether a fault was injected at this operation.
	Faulted bool
}

// Mode selects the flavor of an injected fault.
type Mode int

const (
	// FaultError fails the operation with ErrInjected and no side effect.
	FaultError Mode = iota
	// FaultENOSPC fails the operation with a wrapped syscall.ENOSPC.
	FaultENOSPC
	// FaultTorn persists a seeded strict prefix of the buffer before
	// failing (writes only; other kinds degrade to FaultError).
	FaultTorn
)

// Options is the deterministic fault plan.
type Options struct {
	// Seed drives torn-write prefix lengths.
	Seed int64
	// FailAt faults the Nth (1-based) mutating operation; 0 disables.
	FailAt int
	// FailKind restricts FailAt's counting to one operation kind; OpAny
	// (the zero value) counts every mutating operation.
	FailKind OpKind
	// Mode is the fault flavor.
	Mode Mode
	// Crash drops the FS into the crashed state once the fault fires:
	// every subsequent mutating operation fails with ErrCrashed.
	Crash bool
	// Latency is injected before every mutating operation.
	Latency time.Duration
}

// FS wraps an inner filesystem with the fault plan.
type FS struct {
	inner fsx.FS
	opts  Options

	mu      sync.Mutex
	seq     int // mutating ops seen
	kindSeq int // ops matching opts.FailKind seen
	ops     []Op
	crashed bool
	wedged  bool
	faulted bool
}

var _ fsx.FS = (*FS)(nil)

// New wraps inner with the given fault plan.
func New(inner fsx.FS, opts Options) *FS {
	return &FS{inner: inner, opts: opts}
}

// OpCount returns the number of mutating operations recorded so far.
func (f *FS) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Ops returns a copy of the recorded mutation log.
func (f *FS) Ops() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.ops...)
}

// Faulted reports whether the planned fault has fired.
func (f *FS) Faulted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faulted
}

// Crashed reports whether the FS is in the crashed state.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Wedge makes every subsequent mutating operation fail with ErrWedged
// while reads keep working — a disk that went read-only or an exhausted
// volume, rather than one that vanished. Heal reverses it. Wedge/Heal is
// the primitive the chaos wedge-mid-workload scenario uses to drive the
// persistence circuit breaker through trip, degraded service, and
// half-open recovery.
func (f *FS) Wedge() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedged = true
}

// Heal clears a wedge; mutating operations succeed again.
func (f *FS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wedged = false
}

// Wedged reports whether the FS is currently wedged.
func (f *FS) Wedged() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wedged
}

// beforeMutation records one mutating operation and decides its fate.
// torn >= 0 means "persist exactly torn bytes of the buffer, then fail".
func (f *FS) beforeMutation(kind OpKind, path string, nbytes int) (torn int, err error) {
	if f.opts.Latency > 0 {
		time.Sleep(f.opts.Latency)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	op := Op{Seq: f.seq, Kind: kind, Path: path, Bytes: nbytes}
	if f.crashed {
		op.Faulted = true
		f.ops = append(f.ops, op)
		return -1, fmt.Errorf("faultfs: %s %s: %w", kind, path, ErrCrashed)
	}
	if f.wedged {
		op.Faulted = true
		f.ops = append(f.ops, op)
		return -1, fmt.Errorf("faultfs: %s %s: %w", kind, path, ErrWedged)
	}
	if f.opts.FailKind == OpAny || f.opts.FailKind == kind {
		f.kindSeq++
	}
	if f.opts.FailAt > 0 && !f.faulted && f.kindSeq == f.opts.FailAt &&
		(f.opts.FailKind == OpAny || f.opts.FailKind == kind) {
		f.faulted = true
		if f.opts.Crash {
			f.crashed = true
		}
		op.Faulted = true
		f.ops = append(f.ops, op)
		switch {
		case f.opts.Mode == FaultTorn && kind == OpWrite && nbytes > 0:
			// The prefix length depends only on (seed, seq), so a replay
			// of the same workload tears the same write the same way.
			rng := rand.New(rand.NewSource(f.opts.Seed ^ int64(f.seq)*0x9e3779b9))
			return rng.Intn(nbytes), fmt.Errorf("faultfs: torn %s %s: %w", kind, path, ErrInjected)
		case f.opts.Mode == FaultENOSPC:
			return -1, fmt.Errorf("faultfs: %s %s: %w", kind, path, syscall.ENOSPC)
		default:
			return -1, fmt.Errorf("faultfs: %s %s: %w", kind, path, ErrInjected)
		}
	}
	f.ops = append(f.ops, op)
	return -1, nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (fsx.File, error) {
	if flag&os.O_CREATE != 0 {
		if _, err := f.beforeMutation(OpCreate, name, 0); err != nil {
			return nil, err
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, path: name, inner: inner}, nil
}

func (f *FS) Open(name string) (fsx.File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, path: name, inner: inner}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *FS) Rename(oldpath, newpath string) error {
	if _, err := f.beforeMutation(OpRename, newpath, 0); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if _, err := f.beforeMutation(OpRemove, name, 0); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.beforeMutation(OpMkdir, path, 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) SyncDir(dir string) error {
	if _, err := f.beforeMutation(OpSyncDir, dir, 0); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// file wraps an fsx.File, gating mutations through the plan. Reads, seeks,
// stats, and closes pass through untouched — a crashed disk still serves
// its page cache, and recovery reopens through a clean FS anyway.
type file struct {
	fs    *FS
	path  string
	inner fsx.File
}

func (f *file) Write(p []byte) (int, error) {
	torn, err := f.fs.beforeMutation(OpWrite, f.path, len(p))
	if err != nil {
		if torn > 0 {
			n, _ := f.inner.Write(p[:torn])
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	torn, err := f.fs.beforeMutation(OpWrite, f.path, len(p))
	if err != nil {
		if torn > 0 {
			n, _ := f.inner.WriteAt(p[:torn], off)
			return n, err
		}
		return 0, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *file) Truncate(size int64) error {
	if _, err := f.fs.beforeMutation(OpTruncate, f.path, 0); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *file) Sync() error {
	if _, err := f.fs.beforeMutation(OpSync, f.path, 0); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *file) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *file) Seek(off int64, whence int) (int64, error) {
	return f.inner.Seek(off, whence)
}
func (f *file) Stat() (os.FileInfo, error) { return f.inner.Stat() }
func (f *file) Close() error               { return f.inner.Close() }
