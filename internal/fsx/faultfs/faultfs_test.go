package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"trajforge/internal/fsx"
)

// runWorkload performs a fixed mutation sequence against fs under dir:
// create, 3 writes, sync, truncate, rename, syncdir — 8 mutating ops.
// It returns the first error encountered.
func runWorkload(fs fsx.FS, dir string) error {
	path := filepath.Join(dir, "w.bin")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("0123456789")); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Truncate(25); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(path, filepath.Join(dir, "w2.bin")); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestRecordsMutations(t *testing.T) {
	fs := New(fsx.OS, Options{})
	if err := runWorkload(fs, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	ops := fs.Ops()
	wantKinds := []OpKind{OpCreate, OpWrite, OpWrite, OpWrite, OpSync, OpTruncate, OpRename, OpSyncDir}
	if len(ops) != len(wantKinds) {
		t.Fatalf("recorded %d ops, want %d: %+v", len(ops), len(wantKinds), ops)
	}
	for i, op := range ops {
		if op.Kind != wantKinds[i] || op.Seq != i+1 || op.Faulted {
			t.Fatalf("op %d = %+v, want kind %v seq %d", i, op, wantKinds[i], i+1)
		}
	}
	if ops[1].Bytes != 10 {
		t.Fatalf("write bytes = %d, want 10", ops[1].Bytes)
	}
	if fs.Faulted() || fs.Crashed() {
		t.Fatal("clean run must not fault")
	}
}

func TestFailAtEverySite(t *testing.T) {
	// Count sites with a clean pass, then verify each one can be failed
	// and that the workload surfaces the injected error.
	clean := New(fsx.OS, Options{})
	if err := runWorkload(clean, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	n := clean.OpCount()
	for k := 1; k <= n; k++ {
		fs := New(fsx.OS, Options{FailAt: k})
		err := runWorkload(fs, t.TempDir())
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("site %d: err = %v, want ErrInjected", k, err)
		}
		if !fs.Faulted() {
			t.Fatalf("site %d: fault did not fire", k)
		}
		ops := fs.Ops()
		if got := ops[len(ops)-1]; got.Seq != k || !got.Faulted {
			t.Fatalf("site %d: last op %+v", k, got)
		}
	}
}

func TestENOSPCMode(t *testing.T) {
	fs := New(fsx.OS, Options{FailAt: 2, Mode: FaultENOSPC})
	err := runWorkload(fs, t.TempDir())
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := New(fsx.OS, Options{Seed: 7, FailAt: 2, Mode: FaultTorn})
	err := runWorkload(fs, dir)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// Op 2 is the first 10-byte write; a strict prefix must be on disk.
	data, rerr := os.ReadFile(filepath.Join(dir, "w.bin"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(data) >= 10 {
		t.Fatalf("torn write persisted %d bytes, want < 10", len(data))
	}
	for i, b := range data {
		if b != byte('0'+i) {
			t.Fatalf("torn content %q is not a prefix", data)
		}
	}

	// Same plan, fresh dir: the torn prefix length must be identical.
	dir2 := t.TempDir()
	fs2 := New(fsx.OS, Options{Seed: 7, FailAt: 2, Mode: FaultTorn})
	if err := runWorkload(fs2, dir2); !errors.Is(err, ErrInjected) {
		t.Fatal(err)
	}
	data2, rerr := os.ReadFile(filepath.Join(dir2, "w.bin"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(data2) != string(data) {
		t.Fatalf("torn prefix not deterministic: %q != %q", data2, data)
	}
}

func TestTornFallsBackOnNonWrite(t *testing.T) {
	// Site 5 is the sync; torn mode must degrade to a plain failure.
	fs := New(fsx.OS, Options{FailAt: 5, Mode: FaultTorn})
	if err := runWorkload(fs, t.TempDir()); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrashStateStopsAllMutations(t *testing.T) {
	dir := t.TempDir()
	fs := New(fsx.OS, Options{FailAt: 3, Crash: true})
	if err := runWorkload(fs, dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("FS must be crashed")
	}
	// Every further mutation fails with ErrCrashed...
	if err := fs.MkdirAll(filepath.Join(dir, "x"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdir err = %v", err)
	}
	if _, err := fs.OpenFile(filepath.Join(dir, "y"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create err = %v", err)
	}
	// ...but reads still work.
	if _, err := fs.ReadFile(filepath.Join(dir, "w.bin")); err != nil {
		t.Fatalf("post-crash read err = %v", err)
	}
	f, err := fs.Open(filepath.Join(dir, "w.bin"))
	if err != nil {
		t.Fatalf("post-crash open err = %v", err)
	}
	f.Close()
}

func TestFailKindFilter(t *testing.T) {
	// Fail the first syncdir only; the earlier create/write/sync sites
	// must pass untouched.
	fs := New(fsx.OS, Options{FailAt: 1, FailKind: OpSyncDir})
	err := runWorkload(fs, t.TempDir())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	ops := fs.Ops()
	last := ops[len(ops)-1]
	if last.Kind != OpSyncDir || !last.Faulted {
		t.Fatalf("faulted op = %+v, want syncdir", last)
	}
	for _, op := range ops[:len(ops)-1] {
		if op.Faulted {
			t.Fatalf("op %+v faulted before the syncdir", op)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	fs := New(fsx.OS, Options{Latency: 2 * time.Millisecond})
	start := time.Now()
	if err := runWorkload(fs, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	// 8 mutating ops at >= 2ms each.
	if elapsed := time.Since(start); elapsed < 16*time.Millisecond {
		t.Fatalf("workload took %v, want >= 16ms of injected latency", elapsed)
	}
}

func TestWedgeAndHeal(t *testing.T) {
	dir := t.TempDir()
	fs := New(fsx.OS, Options{})
	if err := runWorkload(fs, dir); err != nil {
		t.Fatalf("healthy workload: %v", err)
	}

	fs.Wedge()
	if !fs.Wedged() {
		t.Fatal("Wedged() must report true after Wedge")
	}
	if err := runWorkload(fs, dir); !errors.Is(err, ErrWedged) {
		t.Fatalf("wedged workload err = %v, want ErrWedged", err)
	}
	// Reads keep working while wedged: the disk is read-only, not gone.
	if _, err := fs.ReadFile(filepath.Join(dir, "w2.bin")); err != nil {
		t.Fatalf("wedged read: %v", err)
	}

	fs.Heal()
	if fs.Wedged() {
		t.Fatal("Wedged() must report false after Heal")
	}
	if err := runWorkload(fs, dir); err != nil {
		t.Fatalf("healed workload: %v", err)
	}
	// The wedge is a state, not a planned fault: Faulted() tracks only
	// the FailAt plan.
	if fs.Faulted() {
		t.Fatal("wedge must not count as the planned fault")
	}
}
