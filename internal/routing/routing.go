// Package routing plans routes over a roadnet.Graph. It provides Dijkstra
// and A* searches under either shortest-distance or fastest-time objectives,
// with per-mode road-class restrictions, and converts the resulting node
// path to a polyline for trajectory sampling. It is the route-planning half
// of the navigation-service substrate (the paper's Amap stand-in).
package routing

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"trajforge/internal/geo"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
)

// ErrNoRoute is returned when the destination is unreachable under the
// requested restrictions.
var ErrNoRoute = errors.New("routing: no route")

// Objective selects what the search minimises.
type Objective int

// Supported objectives.
const (
	// ShortestDistance minimises total metres.
	ShortestDistance Objective = iota + 1
	// FastestTime minimises travel time at per-edge mode speeds.
	FastestTime
)

// Query describes a routing request.
type Query struct {
	From, To  int // node IDs
	Mode      trajectory.Mode
	Objective Objective
	// UseAStar enables the A* heuristic (admissible for both objectives).
	UseAStar bool
}

// Route is a planned path.
type Route struct {
	Nodes []int   // node IDs, From..To
	Edges []int   // edge IDs, len(Nodes)-1
	Cost  float64 // metres or seconds depending on the objective
	// Length is always the total metres.
	Length float64
}

// Polyline returns the route geometry.
func (r *Route) Polyline(g *roadnet.Graph) []geo.Point {
	out := make([]geo.Point, len(r.Nodes))
	for i, id := range r.Nodes {
		out[i] = g.Node(id).Pos
	}
	return out
}

// ModeSpeed returns the nominal cruise speed of a mode on an edge in m/s.
// Walking and cycling are bounded by the traveller, driving by the limit.
func ModeSpeed(mode trajectory.Mode, e roadnet.Edge) float64 {
	switch mode {
	case trajectory.ModeWalking:
		return 1.4
	case trajectory.ModeCycling:
		return math.Min(4.5, e.SpeedLimit)
	case trajectory.ModeDriving:
		return e.SpeedLimit
	default:
		return 1.4
	}
}

// usable reports whether mode may traverse the edge.
func usable(mode trajectory.Mode, e roadnet.Edge) bool {
	return roadnet.Allows(e.Class, mode == trajectory.ModeDriving)
}

// edgeCost returns the search cost of an edge under the objective.
func edgeCost(obj Objective, mode trajectory.Mode, e roadnet.Edge) float64 {
	if obj == FastestTime {
		return e.Length / ModeSpeed(mode, e)
	}
	return e.Length
}

// maxModeSpeed is an upper bound of ModeSpeed over all edges, used by the
// admissible time heuristic.
func maxModeSpeed(mode trajectory.Mode) float64 {
	switch mode {
	case trajectory.ModeWalking:
		return 1.4
	case trajectory.ModeCycling:
		return 4.5
	case trajectory.ModeDriving:
		return 16.7
	default:
		return 1.4
	}
}

// Plan runs the search described by q over g.
func Plan(g *roadnet.Graph, q Query) (*Route, error) {
	n := g.NumNodes()
	if q.From < 0 || q.From >= n || q.To < 0 || q.To >= n {
		return nil, fmt.Errorf("routing: node out of range (from=%d, to=%d, n=%d)", q.From, q.To, n)
	}
	obj := q.Objective
	if obj == 0 {
		obj = ShortestDistance
	}
	mode := q.Mode
	if mode == 0 {
		mode = trajectory.ModeWalking
	}

	heuristic := func(node int) float64 { return 0 }
	if q.UseAStar {
		goal := g.Node(q.To).Pos
		if obj == FastestTime {
			v := maxModeSpeed(mode)
			heuristic = func(node int) float64 { return geo.Dist(g.Node(node).Pos, goal) / v }
		} else {
			heuristic = func(node int) float64 { return geo.Dist(g.Node(node).Pos, goal) }
		}
	}

	dist := make([]float64, n)
	prevEdge := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[q.From] = 0

	pq := &nodeHeap{}
	heap.Push(pq, nodeItem{node: q.From, priority: heuristic(q.From)})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if done[it.node] {
			continue
		}
		if it.node == q.To {
			break
		}
		done[it.node] = true
		for _, eid := range g.Out(it.node) {
			e := g.Edge(eid)
			if !usable(mode, e) {
				continue
			}
			nd := dist[it.node] + edgeCost(obj, mode, e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				heap.Push(pq, nodeItem{node: e.To, priority: nd + heuristic(e.To)})
			}
		}
	}
	if math.IsInf(dist[q.To], 1) {
		return nil, fmt.Errorf("%w: %d -> %d for %v", ErrNoRoute, q.From, q.To, mode)
	}

	// Reconstruct.
	r := &Route{Cost: dist[q.To]}
	for node := q.To; node != q.From; {
		eid := prevEdge[node]
		e := g.Edge(eid)
		r.Edges = append(r.Edges, eid)
		r.Nodes = append(r.Nodes, node)
		r.Length += e.Length
		node = e.From
	}
	r.Nodes = append(r.Nodes, q.From)
	reverseInts(r.Nodes)
	reverseInts(r.Edges)
	return r, nil
}

func reverseInts(s []int) {
	for lo, hi := 0, len(s)-1; lo < hi; lo, hi = lo+1, hi-1 {
		s[lo], s[hi] = s[hi], s[lo]
	}
}

type nodeItem struct {
	node     int
	priority float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].priority < h[j].priority }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

var _ heap.Interface = (*nodeHeap)(nil)
