package routing

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"trajforge/internal/geo"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
)

func testGraph(t *testing.T, seed int64) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Generate(rand.New(rand.NewSource(seed)), roadnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlanBasics(t *testing.T) {
	g := testGraph(t, 1)
	from := g.NearestNode(geo.Point{X: 0, Y: 0})
	to := g.NearestNode(geo.Point{X: 700, Y: 500})
	r, err := Plan(g, Query{From: from, To: to, Mode: trajectory.ModeWalking})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes[0] != from || r.Nodes[len(r.Nodes)-1] != to {
		t.Fatalf("route endpoints wrong: %d..%d", r.Nodes[0], r.Nodes[len(r.Nodes)-1])
	}
	if len(r.Edges) != len(r.Nodes)-1 {
		t.Fatalf("edges %d vs nodes %d inconsistent", len(r.Edges), len(r.Nodes))
	}
	// Route must be contiguous.
	for i, eid := range r.Edges {
		e := g.Edge(eid)
		if e.From != r.Nodes[i] || e.To != r.Nodes[i+1] {
			t.Fatalf("edge %d does not connect nodes %d->%d", eid, r.Nodes[i], r.Nodes[i+1])
		}
	}
	// Cost equals summed edge length for ShortestDistance.
	var sum float64
	for _, eid := range r.Edges {
		sum += g.Edge(eid).Length
	}
	if math.Abs(sum-r.Cost) > 1e-9 || math.Abs(sum-r.Length) > 1e-9 {
		t.Fatalf("cost %v / length %v != edge sum %v", r.Cost, r.Length, sum)
	}
	// Route length must be at least the straight-line distance.
	straight := geo.Dist(g.Node(from).Pos, g.Node(to).Pos)
	if r.Length < straight-1e-9 {
		t.Fatalf("route length %v shorter than straight line %v", r.Length, straight)
	}
	pl := r.Polyline(g)
	if len(pl) != len(r.Nodes) {
		t.Fatal("polyline length mismatch")
	}
}

func TestPlanSelfRoute(t *testing.T) {
	g := testGraph(t, 1)
	r, err := Plan(g, Query{From: 5, To: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 1 || r.Cost != 0 {
		t.Fatalf("self route = %+v", r)
	}
}

func TestPlanOutOfRange(t *testing.T) {
	g := testGraph(t, 1)
	if _, err := Plan(g, Query{From: -1, To: 0}); err == nil {
		t.Fatal("negative node must error")
	}
	if _, err := Plan(g, Query{From: 0, To: g.NumNodes()}); err == nil {
		t.Fatal("overflow node must error")
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 9)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		from := rng.Intn(g.NumNodes())
		to := rng.Intn(g.NumNodes())
		for _, obj := range []Objective{ShortestDistance, FastestTime} {
			for _, mode := range trajectory.Modes() {
				d, err1 := Plan(g, Query{From: from, To: to, Mode: mode, Objective: obj})
				a, err2 := Plan(g, Query{From: from, To: to, Mode: mode, Objective: obj, UseAStar: true})
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("A* and Dijkstra disagree on feasibility: %v vs %v", err1, err2)
				}
				if err1 != nil {
					continue
				}
				if math.Abs(d.Cost-a.Cost) > 1e-6 {
					t.Fatalf("A* cost %v != Dijkstra cost %v (%d->%d %v %v)",
						a.Cost, d.Cost, from, to, mode, obj)
				}
			}
		}
	}
}

func TestDrivingAvoidsFootways(t *testing.T) {
	g := testGraph(t, 4)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		from := rng.Intn(g.NumNodes())
		to := rng.Intn(g.NumNodes())
		r, err := Plan(g, Query{From: from, To: to, Mode: trajectory.ModeDriving, Objective: FastestTime})
		if err != nil {
			if errors.Is(err, ErrNoRoute) {
				continue // some nodes may only be reachable on foot
			}
			t.Fatal(err)
		}
		for _, eid := range r.Edges {
			if g.Edge(eid).Class == roadnet.ClassFootway {
				t.Fatalf("driving route uses footway edge %d", eid)
			}
		}
	}
}

func TestFastestTimePrefersArterials(t *testing.T) {
	g := testGraph(t, 6)
	from := g.NearestNode(geo.Point{X: 0, Y: 0})
	to := g.NearestNode(geo.Point{X: 780, Y: 580})
	shortest, err := Plan(g, Query{From: from, To: to, Mode: trajectory.ModeDriving, Objective: ShortestDistance})
	if err != nil {
		t.Fatal(err)
	}
	fastest, err := Plan(g, Query{From: from, To: to, Mode: trajectory.ModeDriving, Objective: FastestTime})
	if err != nil {
		t.Fatal(err)
	}
	// Fastest route may be longer in metres but must not be slower in time.
	timeOf := func(r *Route) float64 {
		var s float64
		for _, eid := range r.Edges {
			e := g.Edge(eid)
			s += e.Length / ModeSpeed(trajectory.ModeDriving, e)
		}
		return s
	}
	if timeOf(fastest) > timeOf(shortest)+1e-9 {
		t.Fatalf("fastest route %v slower than shortest %v", timeOf(fastest), timeOf(shortest))
	}
}

func TestModeSpeed(t *testing.T) {
	e := roadnet.Edge{SpeedLimit: 16.7, Class: roadnet.ClassArterial}
	if ModeSpeed(trajectory.ModeWalking, e) != 1.4 {
		t.Fatal("walking speed wrong")
	}
	if got := ModeSpeed(trajectory.ModeCycling, e); got != 4.5 {
		t.Fatalf("cycling speed = %v", got)
	}
	if got := ModeSpeed(trajectory.ModeDriving, e); got != 16.7 {
		t.Fatalf("driving speed = %v", got)
	}
	slow := roadnet.Edge{SpeedLimit: 3, Class: roadnet.ClassStreet}
	if got := ModeSpeed(trajectory.ModeCycling, slow); got != 3 {
		t.Fatalf("cycling must respect low limits, got %v", got)
	}
}
