package xgb

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Save writes the model to w in gob format.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("xgb: encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("xgb: decode model: %w", err)
	}
	if m.NumFeat <= 0 {
		return nil, fmt.Errorf("xgb: decoded model has %d features", m.NumFeat)
	}
	for ti, t := range m.Trees {
		for ni, nd := range t.Nodes {
			if nd.Feature >= m.NumFeat {
				return nil, fmt.Errorf("xgb: tree %d node %d splits on feature %d of %d", ti, ni, nd.Feature, m.NumFeat)
			}
			if nd.Feature >= 0 && (nd.Left < 0 || nd.Left >= len(t.Nodes) || nd.Right < 0 || nd.Right >= len(t.Nodes)) {
				return nil, fmt.Errorf("xgb: tree %d node %d has out-of-range children", ti, ni)
			}
		}
	}
	m.forest() // compile the flat inference form eagerly
	return &m, nil
}
