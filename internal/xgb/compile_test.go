package xgb

import (
	"math"
	"math/rand"
	"testing"
)

// randomTrainingSet builds a labelled set with deliberate pathologies:
// some NaN (missing) cells, heavy-tailed values, and duplicated columns.
func randomTrainingSet(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		var s float64
		for j := range row {
			switch {
			case rng.Float64() < 0.08:
				row[j] = math.NaN()
			case rng.Float64() < 0.1:
				row[j] = rng.NormFloat64() * 1e6
			default:
				row[j] = rng.NormFloat64()
			}
			if !math.IsNaN(row[j]) {
				s += row[j]
			}
		}
		X[i] = row
		if s > 0 {
			y[i] = 1
		}
	}
	return X, y
}

// TestCompiledMatchesPointerBitIdentical trains models under randomly drawn
// configurations and checks that the compiled flat forest reproduces the
// pointer trees bit for bit — across ordinary rows, rows with NaN cells,
// rows shorter than the training dimension (absent features = missing),
// overlong rows, and out-of-range magnitudes. This is the contract that
// lets every caller switch to the compiled kernel without re-validating
// verdicts.
func TestCompiledMatchesPointerBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		d := 2 + rng.Intn(9)
		n := 40 + rng.Intn(120)
		cfg := Config{
			Rounds:         1 + rng.Intn(40),
			MaxDepth:       1 + rng.Intn(6),
			LearningRate:   0.05 + rng.Float64()*0.45,
			Lambda:         rng.Float64() * 2,
			Gamma:          rng.Float64() * 0.5,
			MinChildWeight: rng.Float64() * 2,
			SubsampleRows:  0.5 + rng.Float64()*0.5,
			SubsampleCols:  0.5 + rng.Float64()*0.5,
			Seed:           rng.Int63(),
		}
		X, y := randomTrainingSet(rng, n, d)
		m, err := Train(X, y, cfg)
		if err != nil {
			t.Fatalf("trial %d: train: %v", trial, err)
		}

		var probes [][]float64
		probes = append(probes, X...)
		for k := 0; k < 50; k++ {
			// Short, exact, and overlong rows; NaN and huge cells.
			ln := 1 + rng.Intn(d+3)
			row := make([]float64, ln)
			for j := range row {
				switch {
				case rng.Float64() < 0.15:
					row[j] = math.NaN()
				case rng.Float64() < 0.1:
					row[j] = math.Inf(1 - 2*rng.Intn(2))
				default:
					row[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
				}
			}
			probes = append(probes, row)
		}
		probes = append(probes, []float64{}) // fully missing row

		batch := make([]float64, len(probes))
		m.PredictBatchInto(batch, probes)
		parBatch := m.PredictBatch(probes)
		for i, row := range probes {
			want := m.PredictProbPointer(row)
			got := m.PredictProb(row)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("trial %d probe %d: compiled %v != pointer %v", trial, i, got, want)
			}
			if math.Float64bits(batch[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d probe %d: PredictBatchInto %v != pointer %v", trial, i, batch[i], want)
			}
			if math.Float64bits(parBatch[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d probe %d: PredictBatch %v != pointer %v", trial, i, parBatch[i], want)
			}
		}
	}
}

// TestPredictBatchIntoZeroAllocs pins the kernel's allocation-free
// guarantee: scoring a block through the compiled forest must not allocate
// once the model is compiled.
func TestPredictBatchIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := randomTrainingSet(rng, 80, 6)
	m, err := Train(X, y, Config{Rounds: 20, MaxDepth: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(X))
	allocs := testing.AllocsPerRun(20, func() { m.PredictBatchInto(dst, X) })
	if allocs != 0 {
		t.Fatalf("PredictBatchInto allocates %.1f objects per run, want 0", allocs)
	}
}

// TestLazyCompileConcurrent hammers a hand-built (never explicitly
// compiled) model from many goroutines; the lazy compile-and-publish must
// be race-free and every goroutine must see identical predictions. Run
// under -race.
func TestLazyCompileConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := randomTrainingSet(rng, 60, 5)
	m, err := Train(X, y, Config{Rounds: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Strip the eager compilation to force the lazy path.
	fresh := &Model{Trees: m.Trees, BaseMargin: m.BaseMargin, NumFeat: m.NumFeat, Gain: m.Gain}
	want := m.PredictProb(X[0])
	done := make(chan float64, 16)
	for g := 0; g < 16; g++ {
		go func() { done <- fresh.PredictProb(X[0]) }()
	}
	for g := 0; g < 16; g++ {
		if got := <-done; math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("concurrent lazy compile: %v != %v", got, want)
		}
	}
}

// BenchmarkKernelPointer and BenchmarkKernelFlattened are the
// pointer-vs-flattened verify-kernel microbenchmark (`make bench-kernel`);
// points/sec is reported by cmd/loadgen's kernel section against the same
// trained model.
func benchModel(b *testing.B) (*Model, [][]float64) {
	rng := rand.New(rand.NewSource(11))
	X, y := randomTrainingSet(rng, 512, 6)
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return m, X
}

func BenchmarkKernelPointer(b *testing.B) {
	m, X := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictProbPointer(X[i%len(X)])
	}
}

func BenchmarkKernelFlattenedSingle(b *testing.B) {
	m, X := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictProb(X[i%len(X)])
	}
}

func BenchmarkKernelFlattenedBatch(b *testing.B) {
	m, X := benchModel(b)
	dst := make([]float64, len(X))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatchInto(dst, X)
	}
	b.StopTimer()
	pts := float64(b.N) * float64(len(X))
	b.ReportMetric(pts/b.Elapsed().Seconds(), "points/s")
}
