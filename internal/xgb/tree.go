package xgb

import (
	"math"
	"sort"
)

// treeBuilder grows one regression tree per boosting round using exact
// greedy split finding on (gradient, hessian) statistics.
type treeBuilder struct {
	X   [][]float64
	cfg Config
}

func newTreeBuilder(X [][]float64, cfg Config) *treeBuilder {
	return &treeBuilder{X: X, cfg: cfg}
}

// build grows a tree over the given row and column subsets.
func (b *treeBuilder) build(rows, cols []int, grad, hess []float64, gainAcc []float64) tree {
	t := tree{}
	b.grow(&t, rows, cols, grad, hess, 0, gainAcc)
	return t
}

// grow appends the subtree for rows and returns its node index.
func (b *treeBuilder) grow(t *tree, rows, cols []int, grad, hess []float64, depth int, gainAcc []float64) int {
	var gSum, hSum float64
	for _, r := range rows {
		gSum += grad[r]
		hSum += hess[r]
	}

	leaf := func() int {
		w := -gSum / (hSum + b.cfg.Lambda) * b.cfg.LearningRate
		t.Nodes = append(t.Nodes, node{Feature: -1, Weight: w})
		return len(t.Nodes) - 1
	}
	if depth >= b.cfg.MaxDepth || len(rows) < 2 {
		return leaf()
	}

	best := splitResult{gain: b.cfg.Gamma}
	for _, f := range cols {
		if s := b.bestSplit(rows, f, grad, hess, gSum, hSum); s.gain > best.gain {
			best = s
			best.feature = f
		}
	}
	if !best.valid {
		return leaf()
	}
	gainAcc[best.feature] += best.gain

	left := make([]int, 0, len(rows))
	right := make([]int, 0, len(rows))
	for _, r := range rows {
		if b.X[r][best.feature] < best.thresh {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	// Reserve this node's slot before growing children.
	idx := len(t.Nodes)
	t.Nodes = append(t.Nodes, node{})
	li := b.grow(t, left, cols, grad, hess, depth+1, gainAcc)
	ri := b.grow(t, right, cols, grad, hess, depth+1, gainAcc)
	t.Nodes[idx] = node{
		Feature: best.feature,
		Thresh:  best.thresh,
		Left:    li,
		Right:   ri,
		Default: best.defaultLeft,
	}
	return idx
}

type splitResult struct {
	valid       bool
	feature     int
	thresh      float64
	gain        float64
	defaultLeft bool
}

// bestSplit finds the best threshold on feature f for the node's rows.
func (b *treeBuilder) bestSplit(rows []int, f int, grad, hess []float64, gSum, hSum float64) splitResult {
	type entry struct {
		v    float64
		g, h float64
	}
	entries := make([]entry, 0, len(rows))
	for _, r := range rows {
		v := b.X[r][f]
		if math.IsNaN(v) {
			continue // missing values follow the default direction
		}
		entries = append(entries, entry{v: v, g: grad[r], h: hess[r]})
	}
	if len(entries) < 2 {
		return splitResult{}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].v < entries[j].v })

	lambda := b.cfg.Lambda
	parentScore := gSum * gSum / (hSum + lambda)

	var gl, hl float64
	best := splitResult{gain: b.cfg.Gamma}
	for i := 0; i+1 < len(entries); i++ {
		gl += entries[i].g
		hl += entries[i].h
		if entries[i].v == entries[i+1].v {
			continue // cannot split between equal values
		}
		gr := gSum - gl
		hr := hSum - hl
		if hl < b.cfg.MinChildWeight || hr < b.cfg.MinChildWeight {
			continue
		}
		gain := 0.5 * (gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - parentScore)
		if gain > best.gain {
			best.valid = true
			best.gain = gain
			best.thresh = (entries[i].v + entries[i+1].v) / 2
			// Send missing values to the heavier side.
			best.defaultLeft = hl >= hr
		}
	}
	return best
}
