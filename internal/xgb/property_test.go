package xgb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: tree models are invariant to strictly monotone per-feature
// transformations of the inputs (applied consistently to train and test):
// splits happen at the same partitions, so predictions are identical.
func TestPropertyMonotoneTransformInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		X, y := xorData(rng, 150)
		m1, err := Train(X, y, Config{Rounds: 10, MaxDepth: 3, Seed: 1})
		if err != nil {
			return false
		}
		// Monotone transforms per feature: exp, cube, and affine.
		transform := func(row []float64) []float64 {
			return []float64{
				math.Exp(row[0]),
				row[1] * row[1] * row[1],
				3*row[2] + 7,
			}
		}
		Xt := make([][]float64, len(X))
		for i, row := range X {
			Xt[i] = transform(row)
		}
		m2, err := Train(Xt, y, Config{Rounds: 10, MaxDepth: 3, Seed: 1})
		if err != nil {
			return false
		}
		for i := range X {
			p1 := m1.PredictProb(X[i])
			p2 := m2.PredictProb(Xt[i])
			if math.Abs(p1-p2) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: probabilities stay in (0, 1) and the hard label agrees with the
// 0.5 threshold for arbitrary inputs, including extremes.
func TestPropertyProbabilityConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := xorData(rng, 200)
	m, err := Train(X, y, Config{Rounds: 20, MaxDepth: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		row := []float64{a, b, c}
		p := m.PredictProb(row)
		if p <= 0 || p >= 1 || math.IsNaN(p) {
			return false
		}
		return m.Predict(row) == (p >= 0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: more boosting rounds never increase training loss by much —
// boosting fits the training set monotonically (up to shrinkage noise).
func TestPropertyMoreRoundsFitTrainingBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := xorData(rng, 300)
	logLoss := func(m *Model) float64 {
		var sum float64
		for i := range X {
			p := math.Min(1-1e-12, math.Max(1e-12, m.PredictProb(X[i])))
			if y[i] == 1 {
				sum -= math.Log(p)
			} else {
				sum -= math.Log(1 - p)
			}
		}
		return sum / float64(len(X))
	}
	var prev float64 = math.Inf(1)
	for _, rounds := range []int{5, 20, 60} {
		m, err := Train(X, y, Config{Rounds: rounds, MaxDepth: 3, LearningRate: 0.3, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		loss := logLoss(m)
		if loss > prev+1e-6 {
			t.Fatalf("training loss rose from %v to %v at %d rounds", prev, loss, rounds)
		}
		prev = loss
	}
}
