package xgb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// xorData builds a noisy XOR problem: not linearly separable, so trees must
// actually split to solve it.
func xorData(rng *rand.Rand, n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		X[i] = []float64{a, b, rng.NormFloat64()} // third feature is noise
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty data must error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 0}, Config{}); err == nil {
		t.Fatal("label count mismatch must error")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 0}, Config{}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, Config{}); err == nil {
		t.Fatal("zero features must error")
	}
}

func TestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := xorData(rng, 600)
	Xt, yt := xorData(rng, 300)
	m, err := Train(X, y, Config{Rounds: 60, MaxDepth: 3, LearningRate: 0.3, Lambda: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range Xt {
		if m.Predict(Xt[i]) == (yt[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(Xt)); acc < 0.93 {
		t.Fatalf("XOR accuracy = %v, want >= 0.93", acc)
	}
}

func TestPredictProbRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := xorData(rng, 200)
	m, err := Train(X, y, Config{Rounds: 10, MaxDepth: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range X {
		p := m.PredictProb(row)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prob = %v", p)
		}
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := xorData(rng, 200)
	m, err := Train(X, y, Config{Rounds: 15, MaxDepth: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(X)
	for i := range X {
		if batch[i] != m.PredictProb(X[i]) {
			t.Fatalf("batch[%d] = %v != single %v", i, batch[i], m.PredictProb(X[i]))
		}
	}
}

func TestConstantLabels(t *testing.T) {
	// All-positive labels: model must predict ~1 everywhere without NaNs.
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []float64{1, 1, 1}
	m, err := Train(X, y, Config{Rounds: 5, MaxDepth: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range X {
		if p := m.PredictProb(row); p < 0.9 || math.IsNaN(p) {
			t.Fatalf("prob = %v, want ~1", p)
		}
	}
}

func TestImportanceIdentifiesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := xorData(rng, 800)
	m, err := Train(X, y, Config{Rounds: 40, MaxDepth: 3, LearningRate: 0.3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.Importance()
	if len(imp) != 3 {
		t.Fatalf("importance dims = %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v", sum)
	}
	// The noise feature must be the least important.
	if imp[2] >= imp[0] || imp[2] >= imp[1] {
		t.Fatalf("noise feature ranked too high: %v", imp)
	}
}

func TestImportanceNoSplits(t *testing.T) {
	// Constant features: nothing to split on, importance all zero.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []float64{1, 0, 1, 0}
	m, err := Train(X, y, Config{Rounds: 3, MaxDepth: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Importance() {
		if v != 0 {
			t.Fatalf("importance = %v, want zeros", m.Importance())
		}
	}
}

func TestMissingValues(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := xorData(rng, 400)
	// Punch NaN holes in 10% of entries.
	for i := range X {
		if rng.Float64() < 0.1 {
			X[i][rng.Intn(3)] = math.NaN()
		}
	}
	m, err := Train(X, y, Config{Rounds: 30, MaxDepth: 3, LearningRate: 0.3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{math.NaN(), math.NaN(), math.NaN()}
	if p := m.PredictProb(probe); math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("all-NaN prediction = %v", p)
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := xorData(rng, 600)
	m, err := Train(X, y, Config{
		Rounds: 80, MaxDepth: 3, LearningRate: 0.3,
		SubsampleRows: 0.7, SubsampleCols: 0.7, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range X {
		if m.Predict(X[i]) == (y[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.9 {
		t.Fatalf("subsampled accuracy = %v", acc)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X, y := xorData(rng, 200)
	m1, err := Train(X, y, Config{Rounds: 10, MaxDepth: 3, SubsampleRows: 0.8, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, y, Config{Rounds: 10, MaxDepth: 3, SubsampleRows: 0.8, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if m1.PredictProb(X[i]) != m2.PredictProb(X[i]) {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	X, y := xorData(rng, 300)
	m, err := Train(X, y, Config{Rounds: 20, MaxDepth: 3, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if back.PredictProb(X[i]) != m.PredictProb(X[i]) {
			t.Fatal("loaded model diverges")
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk must error")
	}
}

func TestGammaPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	X, y := xorData(rng, 300)
	strict, err := Train(X, y, Config{Rounds: 10, MaxDepth: 4, Gamma: 1e9, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	// With an absurd gamma no split clears the bar: all trees are stumps
	// (single leaf).
	for ti, tr := range strict.Trees {
		if len(tr.Nodes) != 1 || tr.Nodes[0].Feature != -1 {
			t.Fatalf("tree %d has %d nodes despite gamma pruning", ti, len(tr.Nodes))
		}
	}
}
