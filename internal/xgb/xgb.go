// Package xgb implements gradient-boosted decision trees with the
// second-order logistic objective of the XGBoost algorithm (Chen & Guestrin,
// KDD'16): exact greedy split finding on gradient/hessian statistics, L2
// leaf regularisation, minimum-gain pruning, shrinkage, and optional row and
// column subsampling. The paper uses XGBoost twice — as a transfer target of
// the forgery attack (motion features) and as the final classifier of the
// WiFi RSSI defense — so this package is shared by both detectors.
package xgb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Config controls training.
type Config struct {
	// Rounds is the number of boosting iterations (trees).
	Rounds int
	// MaxDepth bounds tree depth (root = depth 0).
	MaxDepth int
	// LearningRate is the shrinkage factor applied to each tree.
	LearningRate float64
	// Lambda is the L2 regularisation on leaf weights.
	Lambda float64
	// Gamma is the minimum gain required to make a split.
	Gamma float64
	// MinChildWeight is the minimum hessian sum per child.
	MinChildWeight float64
	// SubsampleRows, SubsampleCols in (0, 1]; 0 means 1.
	SubsampleRows, SubsampleCols float64
	// Seed drives subsampling.
	Seed int64
}

// DefaultConfig returns settings that work well at this repository's data
// scales.
func DefaultConfig() Config {
	return Config{
		Rounds:         60,
		MaxDepth:       4,
		LearningRate:   0.2,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		SubsampleRows:  0.9,
		SubsampleCols:  0.9,
	}
}

// node is one tree node in flattened storage.
type node struct {
	Feature int     // split feature, -1 for leaf
	Thresh  float64 // go left when x[Feature] < Thresh
	Left    int     // child indices
	Right   int
	Weight  float64 // leaf value (already shrunk)
	Default bool    // direction for NaN: true = left
}

// tree is a fitted regression tree.
type tree struct {
	Nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		nd := t.Nodes[i]
		if nd.Feature < 0 {
			return nd.Weight
		}
		// A vector shorter than the training dimension (e.g. features of a
		// shorter trajectory) treats the absent value as missing rather
		// than panicking.
		v := math.NaN()
		if nd.Feature < len(x) {
			v = x[nd.Feature]
		}
		if math.IsNaN(v) {
			if nd.Default {
				i = nd.Left
			} else {
				i = nd.Right
			}
			continue
		}
		if v < nd.Thresh {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
}

// Model is a fitted boosted ensemble for binary classification. The
// exported pointer trees are the authoritative, serialised form; inference
// runs through the compiled flat forest (compile.go), lowered eagerly by
// Train and Load and lazily on first prediction for hand-built models.
// Mutating Trees after the first prediction is not supported.
type Model struct {
	Trees      []tree
	BaseMargin float64
	NumFeat    int
	// Gain accumulates per-feature split gain (importance).
	Gain []float64

	compiled atomic.Pointer[forest]
}

// Errors returned by Train.
var (
	ErrNoData   = errors.New("xgb: empty training set")
	ErrBadShape = errors.New("xgb: inconsistent feature dimensions")
)

// Train fits a model on X (n rows of d features) with binary labels y.
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	n := len(X)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("%w: %d rows, %d labels", ErrNoData, n, len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero features", ErrBadShape)
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrBadShape, i, len(row), d)
		}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultConfig().Rounds
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = DefaultConfig().MaxDepth
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = DefaultConfig().LearningRate
	}
	if cfg.Lambda < 0 {
		cfg.Lambda = 0
	}
	if cfg.MinChildWeight <= 0 {
		cfg.MinChildWeight = 1e-6
	}
	if cfg.SubsampleRows <= 0 || cfg.SubsampleRows > 1 {
		cfg.SubsampleRows = 1
	}
	if cfg.SubsampleCols <= 0 || cfg.SubsampleCols > 1 {
		cfg.SubsampleCols = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	m := &Model{NumFeat: d, Gain: make([]float64, d)}
	// Base margin: log-odds of the positive rate.
	var pos float64
	for _, v := range y {
		pos += v
	}
	rate := math.Min(1-1e-6, math.Max(1e-6, pos/float64(n)))
	m.BaseMargin = math.Log(rate / (1 - rate))

	margin := make([]float64, n)
	for i := range margin {
		margin[i] = m.BaseMargin
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	builder := newTreeBuilder(X, cfg)
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(margin[i])
			grad[i] = p - y[i]
			hess[i] = math.Max(1e-12, p*(1-p))
		}
		rows := sampleRows(rng, n, cfg.SubsampleRows)
		cols := sampleCols(rng, d, cfg.SubsampleCols)
		tr := builder.build(rows, cols, grad, hess, m.Gain)
		m.Trees = append(m.Trees, tr)
		// Update margins (over all rows, not just the subsample).
		for i := 0; i < n; i++ {
			margin[i] += tr.predict(X[i])
		}
	}
	m.forest() // compile the flat inference form eagerly
	return m, nil
}

// PredictProb returns P(label = 1 | x), scored through the compiled flat
// forest (bit-identical to the pointer trees).
func (m *Model) PredictProb(x []float64) float64 {
	return sigmoid(m.forest().margin1(x))
}

// Predict returns the hard label at the 0.5 threshold.
func (m *Model) Predict(x []float64) bool { return m.PredictProb(x) >= 0.5 }

// Importance returns gain-based feature importances normalised to sum 1
// (all zeros when the model never split).
func (m *Model) Importance() []float64 {
	out := make([]float64, len(m.Gain))
	var total float64
	for _, g := range m.Gain {
		total += g
	}
	if total == 0 {
		return out
	}
	for i, g := range m.Gain {
		out[i] = g / total
	}
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

func sampleRows(rng *rand.Rand, n int, frac float64) []int {
	if frac >= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	k := int(math.Ceil(frac * float64(n)))
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

func sampleCols(rng *rand.Rand, d int, frac float64) []int {
	if frac >= 1 {
		idx := make([]int, d)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	k := int(math.Ceil(frac * float64(d)))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(d)[:k]
	sort.Ints(perm)
	return perm
}
