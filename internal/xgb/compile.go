package xgb

import (
	"fmt"
	"math"

	"trajforge/internal/parallel"
)

// This file is the compiled inference path: every trained (or loaded) model
// is lowered into a single contiguous node array covering the whole forest,
// and all predictions route through a branchless, predicated traversal loop
// over that array. The pointer trees stay authoritative for training and
// serialisation; the flat form is a pure, deterministic function of them,
// so pointer and flattened predictions are bit-identical (the property
// tests in compile_test.go pin this across random models, NaN features,
// and short/overlong vectors).
//
// Three structural ideas make the kernel fast:
//
//  1. Predicated descent. "Go left iff v < thresh OR (v is NaN AND
//     default-left)" is computed as flag arithmetic and used to *index*
//     the child pair, so the 50/50 split decision never becomes a
//     data-dependent branch (which would mispredict half the time).
//
//  2. Fixed-depth stepping. Leaves carry self-referencing children, so a
//     walk can take exactly depth(tree) steps with no leaf check inside
//     the loop: a lane that reaches its leaf early just spins in place.
//
//  3. Interleaved lanes. One row's descent is a serial load→compare→index
//     dependency chain, so the batch kernel steps four rows through the
//     same tree at once — four independent chains keep the load ports
//     busy instead of waiting out each level's latency in turn.

// flatNode is one forest node packed into 24 bytes.
//
//	val:  split threshold (internal) or leaf weight (leaf)
//	kids: child indices into the forest-wide node array; kids[1] is the
//	      left child and kids[0] the right, so the descent predicate
//	      selects the child by computed index. Leaves point both at
//	      themselves (the fixed-depth spin).
//	feat: featureIndex<<2 | defaultLeft<<1 | isLeaf. Leaves use feature 0
//	      so the leaf-free stepping loop still reads a valid cell.
type flatNode struct {
	val  float64
	kids [2]uint32
	feat int32
}

// forest is a compiled model: all trees' nodes in one array, laid out in
// depth-first preorder per tree so a traversal touches monotonically
// increasing, usually adjacent, indices.
type forest struct {
	nodes   []flatNode
	roots   []uint32
	depths  []uint8 // per-tree max depth: the fixed step count of a walk
	base    float64
	numFeat int
}

// compileForest lowers the pointer trees into the flat layout. It is pure:
// two calls on the same model produce identical forests.
func compileForest(m *Model) *forest {
	total := 0
	for i := range m.Trees {
		total += len(m.Trees[i].Nodes)
	}
	f := &forest{
		nodes:   make([]flatNode, 0, total),
		roots:   make([]uint32, 0, len(m.Trees)),
		depths:  make([]uint8, 0, len(m.Trees)),
		base:    m.BaseMargin,
		numFeat: m.NumFeat,
	}
	for i := range m.Trees {
		root, depth := f.emit(&m.Trees[i], 0)
		f.roots = append(f.roots, root)
		if depth > 255 {
			depth = 255 // unreachable at sane MaxDepth; keeps uint8 honest
		}
		f.depths = append(f.depths, uint8(depth))
	}
	return f
}

// emit appends the subtree rooted at pointer-node idx in preorder and
// returns its flat index and depth.
func (f *forest) emit(t *tree, idx int) (uint32, int) {
	nd := t.Nodes[idx]
	at := uint32(len(f.nodes))
	if nd.Feature < 0 {
		f.nodes = append(f.nodes, flatNode{val: nd.Weight, kids: [2]uint32{at, at}, feat: 1})
		return at, 0
	}
	feat := int32(nd.Feature) << 2
	if nd.Default {
		feat |= 2
	}
	f.nodes = append(f.nodes, flatNode{val: nd.Thresh, feat: feat})
	left, dl := f.emit(t, nd.Left)
	right, dr := f.emit(t, nd.Right)
	f.nodes[at].kids = [2]uint32{right, left}
	if dl < dr {
		dl = dr
	}
	return at, dl + 1
}

// leafFull walks one tree for a row known to cover every feature index the
// model splits on. The descent predicate
//
//	go left  iff  v < thresh  OR  (v is NaN AND default-left)
//
// reproduces the pointer semantics exactly: for ordinary values the NaN
// term is zero and the threshold decides; NaN fails every comparison, so
// the default-direction bit decides. Both comparisons materialise as
// flags, and kids[c&1] turns the outcome into a load.
func (f *forest) leafFull(root uint32, x []float64) float64 {
	nodes := f.nodes
	i := root
	for {
		nd := &nodes[i]
		ft := nd.feat
		if ft&1 != 0 {
			return nd.val
		}
		v := x[ft>>2]
		lt := 0
		if v < nd.val {
			lt = 1
		}
		nan := 0
		if v != v {
			nan = 1
		}
		i = nd.kids[(lt|(nan&int(ft>>1)))&1]
	}
}

// leafShort is leafFull for rows shorter than the training dimension:
// absent features read as NaN (missing) instead of panicking, matching
// tree.predict.
func (f *forest) leafShort(root uint32, x []float64) float64 {
	nodes := f.nodes
	i := root
	for {
		nd := &nodes[i]
		ft := nd.feat
		if ft&1 != 0 {
			return nd.val
		}
		v := math.NaN()
		if fi := int(ft >> 2); fi < len(x) {
			v = x[fi]
		}
		lt := 0
		if v < nd.val {
			lt = 1
		}
		nan := 0
		if v != v {
			nan = 1
		}
		i = nd.kids[(lt|(nan&int(ft>>1)))&1]
	}
}

// margin1 accumulates the forest margin for one row in tree order — the
// same float addition order as the pointer path, so the sum is bit-exact.
func (f *forest) margin1(x []float64) float64 {
	s := f.base
	if len(x) >= f.numFeat && len(x) > 0 {
		for _, root := range f.roots {
			s += f.leafFull(root, x)
		}
		return s
	}
	for _, root := range f.roots {
		s += f.leafShort(root, x)
	}
	return s
}

// marginBlock is the tree-major block size of marginsInto: small enough
// that a block of margins and one tree's nodes stay L1-resident together,
// large enough to amortise the per-tree loop overhead.
const marginBlock = 64

// marginsInto writes the forest margin of every row of X into dst without
// allocating. Rows are processed in blocks, tree-major within a block (one
// tree's nodes stay cache-hot across the whole block), four lanes at a
// time through the fixed-depth stepping loop. Per row the trees still
// accumulate in index order, so dst is bit-identical to calling margin1
// row by row.
func (f *forest) marginsInto(dst []float64, X [][]float64) {
	if len(dst) != len(X) {
		panic(fmt.Sprintf("xgb: margins into %d slots for %d rows", len(dst), len(X)))
	}
	nodes := f.nodes
	for lo := 0; lo < len(X); lo += marginBlock {
		hi := lo + marginBlock
		if hi > len(X) {
			hi = len(X)
		}
		rows, out := X[lo:hi], dst[lo:hi]
		full := true
		for _, x := range rows {
			if len(x) < f.numFeat || len(x) == 0 {
				full = false
				break
			}
		}
		for i := range out {
			out[i] = f.base
		}
		if !full {
			// Rare path: a row is missing trailing features; take the
			// bounds-checked scalar walk for the whole block.
			for _, root := range f.roots {
				for r, x := range rows {
					out[r] += f.leafShort(root, x)
				}
			}
			continue
		}
		for t, root := range f.roots {
			steps := int(f.depths[t])
			n8 := len(rows) &^ 7
			for r := 0; r < n8; r += 8 {
				x0, x1, x2, x3 := rows[r], rows[r+1], rows[r+2], rows[r+3]
				x4, x5, x6, x7 := rows[r+4], rows[r+5], rows[r+6], rows[r+7]
				i0, i1, i2, i3 := root, root, root, root
				i4, i5, i6, i7 := root, root, root, root
				for s := 0; s < steps; s++ {
					nd0, nd1, nd2, nd3 := &nodes[i0], &nodes[i1], &nodes[i2], &nodes[i3]
					nd4, nd5, nd6, nd7 := &nodes[i4], &nodes[i5], &nodes[i6], &nodes[i7]
					ft0, ft1, ft2, ft3 := nd0.feat, nd1.feat, nd2.feat, nd3.feat
					ft4, ft5, ft6, ft7 := nd4.feat, nd5.feat, nd6.feat, nd7.feat
					v0, v1, v2, v3 := x0[ft0>>2], x1[ft1>>2], x2[ft2>>2], x3[ft3>>2]
					v4, v5, v6, v7 := x4[ft4>>2], x5[ft5>>2], x6[ft6>>2], x7[ft7>>2]
					c0, c1, c2, c3 := 0, 0, 0, 0
					c4, c5, c6, c7 := 0, 0, 0, 0
					if v0 < nd0.val {
						c0 = 1
					}
					if v1 < nd1.val {
						c1 = 1
					}
					if v2 < nd2.val {
						c2 = 1
					}
					if v3 < nd3.val {
						c3 = 1
					}
					if v4 < nd4.val {
						c4 = 1
					}
					if v5 < nd5.val {
						c5 = 1
					}
					if v6 < nd6.val {
						c6 = 1
					}
					if v7 < nd7.val {
						c7 = 1
					}
					if v0 != v0 {
						c0 |= int(ft0 >> 1)
					}
					if v1 != v1 {
						c1 |= int(ft1 >> 1)
					}
					if v2 != v2 {
						c2 |= int(ft2 >> 1)
					}
					if v3 != v3 {
						c3 |= int(ft3 >> 1)
					}
					if v4 != v4 {
						c4 |= int(ft4 >> 1)
					}
					if v5 != v5 {
						c5 |= int(ft5 >> 1)
					}
					if v6 != v6 {
						c6 |= int(ft6 >> 1)
					}
					if v7 != v7 {
						c7 |= int(ft7 >> 1)
					}
					i0, i1, i2, i3 = nd0.kids[c0&1], nd1.kids[c1&1], nd2.kids[c2&1], nd3.kids[c3&1]
					i4, i5, i6, i7 = nd4.kids[c4&1], nd5.kids[c5&1], nd6.kids[c6&1], nd7.kids[c7&1]
				}
				out[r] += nodes[i0].val
				out[r+1] += nodes[i1].val
				out[r+2] += nodes[i2].val
				out[r+3] += nodes[i3].val
				out[r+4] += nodes[i4].val
				out[r+5] += nodes[i5].val
				out[r+6] += nodes[i6].val
				out[r+7] += nodes[i7].val
			}
			for r := n8; r < len(rows); r++ {
				x := rows[r]
				i := root
				for s := 0; s < steps; s++ {
					nd := &nodes[i]
					ft := nd.feat
					v := x[ft>>2]
					c := 0
					if v < nd.val {
						c = 1
					}
					if v != v {
						c |= int(ft >> 1)
					}
					i = nd.kids[c&1]
				}
				out[r] += nodes[i].val
			}
		}
	}
}

// forest returns the compiled form, lowering the pointer trees on first
// use. The compare-and-swap makes concurrent first calls safe: compilation
// is pure, so whichever forest wins publication is identical to the losers.
// Train and Load compile eagerly; this lazy path covers hand-built models
// (tests, fixtures) transparently.
func (m *Model) forest() *forest {
	if f := m.compiled.Load(); f != nil {
		return f
	}
	m.compiled.CompareAndSwap(nil, compileForest(m))
	return m.compiled.Load()
}

// PredictBatchInto scores every row of X into dst (len(dst) must equal
// len(X)) through the compiled forest with zero allocations — the verify
// kernel the batch pipeline and the benchmarks run. It is deterministic
// and bit-identical to calling PredictProb per row.
func (m *Model) PredictBatchInto(dst []float64, X [][]float64) {
	f := m.forest()
	f.marginsInto(dst, X)
	for i, s := range dst {
		dst[i] = sigmoid(s)
	}
}

// PredictBatch scores many rows, fanning blocks across the worker pool.
// Results are in row order and bit-identical to the serial loop. Callers
// on a hot path should prefer PredictBatchInto with a reused slice.
func (m *Model) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	f := m.forest() // compile once, outside the fan-out
	parallel.ForEachChunk(len(X), func(lo, hi int) {
		f.marginsInto(out[lo:hi], X[lo:hi])
		for i := lo; i < hi; i++ {
			out[i] = sigmoid(out[i])
		}
	})
	return out
}

// PredictProbPointer scores one row through the original pointer trees —
// the reference implementation the compiled kernel is proven against, kept
// for the bit-identity property tests and the pointer-vs-flattened
// microbenchmark.
func (m *Model) PredictProbPointer(x []float64) float64 {
	return sigmoid(m.marginPointer(x))
}

func (m *Model) marginPointer(x []float64) float64 {
	s := m.BaseMargin
	for i := range m.Trees {
		s += m.Trees[i].predict(x)
	}
	return s
}
