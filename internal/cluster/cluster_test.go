package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
)

// randRecords mirrors shardstore's test generator: crowdsourced records
// spread over a width×height area, dense enough that reference queries and
// counting areas are non-trivial.
func randRecords(rng *rand.Rand, n int, width, height float64) []rssimap.Record {
	macs := make([]string, 40)
	for i := range macs {
		macs[i] = fmt.Sprintf("02:4e:00:00:00:%02x", i)
	}
	recs := make([]rssimap.Record, n)
	for i := range recs {
		m := make(map[string]int)
		for j := 0; j < 3+rng.Intn(5); j++ {
			m[macs[rng.Intn(len(macs))]] = -40 - rng.Intn(50)
		}
		recs[i] = rssimap.Record{
			Pos:  geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height},
			RSSI: m,
		}
	}
	return recs
}

// randUpload builds an upload whose trajectory wanders across tile
// boundaries, every point carrying a scan.
func randUpload(rng *rand.Rand, n int, width, height float64) *wifi.Upload {
	pos := make([]geo.Point, n)
	p := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
	for i := range pos {
		p.X = math.Abs(math.Mod(p.X+rng.NormFloat64()*4, width))
		p.Y = math.Abs(math.Mod(p.Y+rng.NormFloat64()*4, height))
		pos[i] = p
	}
	traj := trajectory.New(pos, time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC), time.Second)
	scans := make([]wifi.Scan, n)
	for i := range scans {
		for j := 0; j < 4; j++ {
			scans[i] = append(scans[i], wifi.Observation{
				MAC:  fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40)),
				RSSI: -40 - rng.Intn(50),
			})
		}
	}
	return &wifi.Upload{Traj: traj, Scans: scans}
}

// testCluster is a coordinator plus its in-process nodes over loopback TCP.
type testCluster struct {
	store *Store
	nodes map[string]*Node
	addrs map[string]string
	dirs  map[string]string
}

// startCluster boots n shard nodes (durable when dir is true, memory-only
// otherwise) and a coordinator over them.
func startCluster(t *testing.T, n int, durable bool) *testCluster {
	t.Helper()
	tc := &testCluster{
		nodes: make(map[string]*Node),
		addrs: make(map[string]string),
		dirs:  make(map[string]string),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		var opts NodeOptions
		if durable {
			tc.dirs[id] = t.TempDir()
			opts.Dir = tc.dirs[id]
		}
		node, err := NewNode(id, shardstore.DefaultConfig(), opts)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[id] = node
		tc.addrs[id] = addr.String()
	}
	store, err := NewStore(Options{Shard: shardstore.DefaultConfig(), Nodes: tc.addrs})
	if err != nil {
		t.Fatal(err)
	}
	tc.store = store
	t.Cleanup(func() {
		store.Close()
		for _, node := range tc.nodes {
			node.Close()
		}
	})
	return tc
}

// assertSameVector requires exact IEEE-754 bit equality, the invariant the
// whole cluster design is built around.
func assertSameVector(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: feature %d differs: %v (%#x) vs %v (%#x)",
				label, i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

// assertClusterMatchesSharded cross-checks the cluster against a
// single-process sharded store over the same records: Eq. 7 confidences and
// Eq. 8 feature vectors must agree bit for bit.
func assertClusterMatchesSharded(t *testing.T, rng *rand.Rand, cs *Store, sharded *shardstore.Store, width, height float64) {
	t.Helper()
	for i := 0; i < 60; i++ {
		o := geo.Point{X: rng.Float64() * width, Y: rng.Float64() * height}
		mac := fmt.Sprintf("02:4e:00:00:00:%02x", rng.Intn(40))
		rssi := -40 - rng.Intn(50)
		wantPhi, wantNum := sharded.ConfidenceTol(o, mac, rssi, 5, 2)
		gotPhi, gotNum := cs.ConfidenceTol(o, mac, rssi, 5, 2)
		if math.Float64bits(wantPhi) != math.Float64bits(gotPhi) || wantNum != gotNum {
			t.Fatalf("confidence at %v for %s/%d: (%v,%d) vs (%v,%d)", o, mac, rssi, wantPhi, wantNum, gotPhi, gotNum)
		}
	}
	cfg := rssimap.DefaultFeatureConfig()
	for i := 0; i < 6; i++ {
		u := randUpload(rng, 30, width, height)
		want, err := sharded.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cs.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, want, got, fmt.Sprintf("upload %d", i))
	}
}

func TestClusterBitIdenticalToShardstore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width, height = 120, 120
	recs := randRecords(rng, 900, width, height)

	tc := startCluster(t, 3, false)
	// Split the ingest into batches so the ordered outbox path is exercised.
	for off := 0; off < len(recs); off += 100 {
		tc.store.Add(recs[off : off+100])
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if tc.store.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", tc.store.Len(), len(recs))
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, width, height)

	// Batch extraction must equal serial extraction.
	uploads := make([]*wifi.Upload, 8)
	for i := range uploads {
		uploads[i] = randUpload(rng, 20, width, height)
	}
	cfg := rssimap.DefaultFeatureConfig()
	batch, err := tc.store.FeaturesBatch(uploads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range uploads {
		want, err := sharded.Features(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameVector(t, want, batch[i], fmt.Sprintf("batch upload %d", i))
	}

	// Records round-trips the canonical log.
	got := tc.store.Records()
	if len(got) != len(recs) {
		t.Fatalf("Records: %d vs %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Pos != recs[i].Pos || len(got[i].RSSI) != len(recs[i].RSSI) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestClusterQueriesOutsideDataAreLocal(t *testing.T) {
	tc := startCluster(t, 2, false)
	tc.store.Add(randRecords(rand.New(rand.NewSource(3)), 50, 20, 20))
	phi, num := tc.store.ConfidenceTol(geo.Point{X: 900, Y: 900}, "02:4e:00:00:00:01", -50, 5, 0)
	if phi != 0 || num != 0 {
		t.Fatalf("empty-tile query returned (%v, %d)", phi, num)
	}
	if st := tc.store.Stats(); st.LocalEmptyAnswers == 0 {
		t.Fatal("empty-tile query was forwarded")
	}
}

func TestClusterLiveMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width, height = 100, 100
	recs := randRecords(rng, 800, width, height)

	tc := startCluster(t, 3, false)
	tc.store.Add(recs[:400])

	tile, ok := tc.store.BusiestTile()
	if !ok {
		t.Fatal("no busiest tile")
	}
	from := tc.store.Assignment().Owner(tile)
	var to string
	for id := range tc.nodes {
		if id != from {
			to = id
			break
		}
	}
	epochBefore := tc.store.Assignment().Epoch

	// Migrate while ingestion and queries run concurrently.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := 400; off < len(recs); off += 50 {
			tc.store.Add(recs[off : off+50])
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		qrng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			o := geo.Point{X: qrng.Float64() * width, Y: qrng.Float64() * height}
			tc.store.ConfidenceTol(o, "02:4e:00:00:00:05", -55, 5, 1)
		}
	}()
	if err := tc.store.Migrate(tile, to); err != nil {
		t.Fatalf("migrate %v from %s to %s: %v", tile, from, to, err)
	}
	close(stop)
	wg.Wait()

	a := tc.store.Assignment()
	if a.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance: %d -> %d", epochBefore, a.Epoch)
	}
	if owner := a.Owner(tile); owner != to {
		t.Fatalf("tile %v owned by %q after migration to %q", tile, owner, to)
	}
	if st := tc.store.Stats(); st.Migrations != 1 || st.MigrationInFlight {
		t.Fatalf("stats after migration: %+v", st)
	}

	// The migrated world answers bit-identically to a store that never
	// migrated at all.
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, width, height)

	// Migrating a tile onto its current owner is a no-op.
	if err := tc.store.Migrate(tile, to); err != nil {
		t.Fatalf("same-owner migrate: %v", err)
	}
	if got := tc.store.Assignment().Epoch; got != a.Epoch {
		t.Fatalf("no-op migrate bumped epoch %d -> %d", a.Epoch, got)
	}
	if err := tc.store.Migrate(tile, "no-such-node"); err == nil {
		t.Fatal("migrate to unknown node succeeded")
	}
}

func TestClusterMigrationBuffersConcurrentWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tc := startCluster(t, 2, false)
	recs := randRecords(rng, 300, 60, 60)
	tc.store.Add(recs[:150])

	tile, ok := tc.store.BusiestTile()
	if !ok {
		t.Fatal("no busiest tile")
	}
	from := tc.store.Assignment().Owner(tile)
	to := "n1"
	if from == "n1" {
		to = "n2"
	}
	// Interleave each migration with writes from another goroutine; the
	// buffered entries must land on the winner.
	done := make(chan error, 1)
	go func() { done <- tc.store.Migrate(tile, to) }()
	for off := 150; off < len(recs); off += 30 {
		tc.store.Add(recs[off : off+30])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, 60, 60)
}

func TestClusterNodeRestartReplaysDurableState(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const width, height = 80, 80
	recs := randRecords(rng, 500, width, height)

	tc := startCluster(t, 3, true)
	tc.store.Add(recs[:300])

	// Kill n2: later adds fail over to the unsynced path, and queries heal
	// it after restart via resync from the canonical log.
	victim := "n2"
	addr := tc.addrs[victim]
	if err := tc.nodes[victim].Close(); err != nil {
		t.Fatal(err)
	}
	tc.store.Add(recs[300:])

	// Restart on the same address with the same durability dir: the WAL
	// replays the acked prefix, resync replays the tail added while down.
	node, err := NewNode(victim, shardstore.DefaultConfig(), NodeOptions{Dir: tc.dirs[victim]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Listen(addr); err != nil {
		t.Fatal(err)
	}
	tc.nodes[victim] = node

	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, width, height)
	if st := tc.store.Stats(); st.Resyncs == 0 {
		t.Fatalf("expected a resync after restart: %+v", st)
	}
	for _, ns := range tc.store.Stats().Nodes {
		if ns.Unsynced {
			t.Fatalf("node %s still unsynced after healing", ns.ID)
		}
	}
}

func TestClusterNodeCompactionPreservesState(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const width, height = 60, 60
	recs := randRecords(rng, 300, width, height)

	tc := startCluster(t, 2, true)
	tc.store.Add(recs)
	for id, node := range tc.nodes {
		if err := node.Compact(); err != nil {
			t.Fatalf("compact %s: %v", id, err)
		}
	}
	// Restart both nodes from snapshot + empty WAL.
	for id, node := range tc.nodes {
		addr := tc.addrs[id]
		if err := node.Close(); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewNode(id, shardstore.DefaultConfig(), NodeOptions{Dir: tc.dirs[id]})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.Listen(addr); err != nil {
			t.Fatal(err)
		}
		tc.nodes[id] = fresh
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, width, height)
}

func TestClusterCoordinatorRestartFencesAndRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const width, height = 60, 60
	recs := randRecords(rng, 300, width, height)

	tc := startCluster(t, 2, false)
	tc.store.Add(recs)
	oldEpoch := tc.store.Assignment().Epoch

	// A new coordinator incarnation (the server restarting and replaying
	// its WAL) re-probes the nodes, adopts a higher epoch, and re-Adds the
	// canonical log; the seq gate makes the replay idempotent.
	store2, err := NewStore(Options{Shard: shardstore.DefaultConfig(), Nodes: tc.addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := store2.Assignment().Epoch; got <= oldEpoch {
		t.Fatalf("new coordinator epoch %d not above old %d", got, oldEpoch)
	}
	store2.Add(recs)

	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, store2, sharded, width, height)

	// The old coordinator is fenced: its next add hits wrongEpoch with a
	// higher node epoch and the node refuses to regress.
	tc.store.Add(recs[:10])
	phi, num := store2.ConfidenceTol(geo.Point{X: 30, Y: 30}, "02:4e:00:00:00:01", -50, 5, 2)
	wantPhi, wantNum := sharded.ConfidenceTol(geo.Point{X: 30, Y: 30}, "02:4e:00:00:00:01", -50, 5, 2)
	if math.Float64bits(phi) != math.Float64bits(wantPhi) || num != wantNum {
		t.Fatalf("fenced-coordinator aftermath: (%v,%d) vs (%v,%d)", phi, num, wantPhi, wantNum)
	}
}

func TestClusterConcurrentAddAndQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const width, height = 60, 60
	recs := randRecords(rng, 400, width, height)
	tc := startCluster(t, 3, false)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := 0; off < len(recs); off += 40 {
			tc.store.Add(recs[off : off+40])
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				o := geo.Point{X: qrng.Float64() * width, Y: qrng.Float64() * height}
				tc.store.PointConfidences(o, wifi.Scan{{MAC: "02:4e:00:00:00:07", RSSI: -60}}, rssimap.DefaultFeatureConfig())
			}
		}(int64(g) + 100)
	}
	wg.Wait()

	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, width, height)
}

func TestClusterStatsShape(t *testing.T) {
	tc := startCluster(t, 3, false)
	recs := randRecords(rand.New(rand.NewSource(71)), 200, 60, 60)
	tc.store.Add(recs)
	tc.store.PointConfidences(geo.Point{X: 30, Y: 30}, wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -50}}, rssimap.DefaultFeatureConfig())

	st := tc.store.Stats()
	if st.Records != len(recs) {
		t.Fatalf("Records = %d, want %d", st.Records, len(recs))
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("Nodes = %d, want 3", len(st.Nodes))
	}
	var tiles, entries int
	for _, ns := range st.Nodes {
		tiles += ns.Tiles
		entries += ns.Entries
	}
	if tiles == 0 || entries < len(recs) {
		t.Fatalf("per-node occupancy empty: %+v", st.Nodes)
	}
	if st.HaloUpdates == 0 {
		t.Fatal("no halo updates recorded over a multi-tile area")
	}
	if st.Forwarded == 0 {
		t.Fatal("no forwarded queries recorded")
	}
	if st.Epoch == 0 {
		t.Fatal("epoch unset")
	}
}

func TestClusterFeatureRadiusBound(t *testing.T) {
	tc := startCluster(t, 2, false)
	cfg := rssimap.DefaultFeatureConfig()
	cfg.R = shardstore.DefaultConfig().MaxQueryRadius + 1
	u := randUpload(rand.New(rand.NewSource(5)), 5, 20, 20)
	if _, err := tc.store.Features(u, cfg); err == nil {
		t.Fatal("oversized feature radius accepted")
	}
}
