package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"trajforge/internal/shardstore"
)

// entryFingerprint canonicalises an Entry — sequence, position bits, sorted
// RSSI readings, and contributor identity — so two tile logs can be compared
// for exact provenance equality.
func entryFingerprint(e Entry) string {
	macs := make([]string, 0, len(e.Rec.RSSI))
	for mac := range e.Rec.RSSI {
		macs = append(macs, mac)
	}
	sort.Strings(macs)
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d pos=%#x/%#x contrib=%q",
		e.Seq, math.Float64bits(e.Rec.Pos.X), math.Float64bits(e.Rec.Pos.Y), e.Rec.Contributor)
	for _, mac := range macs {
		fmt.Fprintf(&b, " %s=%d", mac, e.Rec.RSSI[mac])
	}
	return b.String()
}

// tileEntries snapshots a node's entry log for one tile.
func tileEntries(n *Node, tile [2]int) []Entry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ts := n.tiles[tile]
	if ts == nil {
		return nil
	}
	return append([]Entry(nil), ts.entries...)
}

// TestClusterMigrationPreservesProvenance pins the acceptance criterion that
// contributor identity survives a tile migration bit-identically: the wire
// codec carries it off the source, the install journals it on the target,
// and a durable restart replays it — all without touching a single byte.
func TestClusterMigrationPreservesProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const width, height = 100, 100
	recs := randRecords(rng, 600, width, height)
	for i := range recs {
		recs[i].Contributor = fmt.Sprintf("dev-%d", i%7)
	}

	tc := startCluster(t, 3, true)
	tc.store.Add(recs)

	tile, ok := tc.store.BusiestTile()
	if !ok {
		t.Fatal("no busiest tile")
	}
	from := tc.store.Assignment().Owner(tile)
	var to string
	for id := range tc.nodes {
		if id != from {
			to = id
			break
		}
	}

	want := tileEntries(tc.nodes[from], tile)
	if len(want) == 0 {
		t.Fatalf("source node %s holds no entries for tile %v", from, tile)
	}
	seen := make(map[string]bool)
	for _, e := range want {
		if e.Rec.Contributor == "" {
			t.Fatal("fixture record lost its contributor before migration")
		}
		seen[e.Rec.Contributor] = true
	}
	if len(seen) < 2 {
		t.Fatalf("degenerate fixture: busiest tile fed by %d contributor(s)", len(seen))
	}

	if err := tc.store.Migrate(tile, to); err != nil {
		t.Fatalf("migrate %v from %s to %s: %v", tile, from, to, err)
	}

	got := tileEntries(tc.nodes[to], tile)
	if len(got) != len(want) {
		t.Fatalf("target holds %d entries, source had %d", len(got), len(want))
	}
	for i := range want {
		if w, g := entryFingerprint(want[i]), entryFingerprint(got[i]); w != g {
			t.Fatalf("entry %d changed in flight:\nsource %s\ntarget %s", i, w, g)
		}
	}
	if left := tileEntries(tc.nodes[from], tile); len(left) != 0 {
		t.Fatalf("source still holds %d entries after handoff", len(left))
	}

	// Restart the target from its durable dir: the installed tile — with
	// every contributor string — must replay from snapshot + WAL exactly.
	addr := tc.addrs[to]
	if err := tc.nodes[to].Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewNode(to, shardstore.DefaultConfig(), NodeOptions{Dir: tc.dirs[to]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Listen(addr); err != nil {
		t.Fatal(err)
	}
	tc.nodes[to] = fresh
	replayed := tileEntries(fresh, tile)
	if len(replayed) != len(want) {
		t.Fatalf("restart replayed %d entries, want %d", len(replayed), len(want))
	}
	for i := range want {
		if w, g := entryFingerprint(want[i]), entryFingerprint(replayed[i]); w != g {
			t.Fatalf("entry %d changed across restart:\nbefore %s\nafter  %s", i, w, g)
		}
	}

	// The coordinator's canonical log keeps the full contributor multiset,
	// and the migrated cluster still answers bit-identically to a
	// single-process store over the same records.
	wantByContrib := make(map[string]int)
	for _, r := range recs {
		wantByContrib[r.Contributor]++
	}
	gotByContrib := make(map[string]int)
	for _, r := range tc.store.Records() {
		gotByContrib[r.Contributor]++
	}
	if len(gotByContrib) != len(wantByContrib) {
		t.Fatalf("contributor set shrank: %d vs %d identities", len(gotByContrib), len(wantByContrib))
	}
	for name, n := range wantByContrib {
		if gotByContrib[name] != n {
			t.Fatalf("contributor %q holds %d canonical records, want %d", name, gotByContrib[name], n)
		}
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, width, height)
}
