// Coordinator lease: a single file naming the active coordinator and when
// its claim expires. The lease is a LIVENESS device only — it keeps two
// coordinators from duelling over the same nodes in the common case.
// SAFETY never depends on it: a coordinator that comes up fences at an
// epoch above every node's journaled epoch, so even if two coordinators
// ever hold the lease at once (clock skew, a stalled renewer), the nodes
// accept exactly one of them and answer the other with statusWrongEpoch.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"trajforge/internal/fsx"
)

// ErrLeaseHeld reports an acquire attempt while another holder's lease is
// still live.
var ErrLeaseHeld = errors.New("cluster: lease held")

// ErrLeaseLost reports a renew or release by a process that no longer
// holds the lease — the signal for a coordinator to stop driving nodes.
var ErrLeaseLost = errors.New("cluster: lease lost")

// Lease is a file-based coordinator lease on a shared directory.
type Lease struct {
	fs   fsx.FS
	path string
	id   string
	ttl  time.Duration
}

// NewLease builds a lease handle for holder id at path. A nil fs uses the
// real filesystem; ttl must be positive.
func NewLease(fs fsx.FS, path, id string, ttl time.Duration) (*Lease, error) {
	if id == "" {
		return nil, errors.New("cluster: lease holder id must be non-empty")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("cluster: lease ttl must be positive, got %v", ttl)
	}
	if fs == nil {
		fs = fsx.OS
	}
	return &Lease{fs: fs, path: path, id: id, ttl: ttl}, nil
}

// Holder reads the current lease: who holds it and whether the claim is
// still live at now. A missing or malformed file reads as unheld — a torn
// write loses at most one renewal, never grants two holders.
func (l *Lease) Holder(now time.Time) (holder string, live bool, err error) {
	data, err := l.fs.ReadFile(l.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", false, nil
		}
		return "", false, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		return "", false, nil
	}
	expiry, err := strconv.ParseInt(strings.TrimSpace(lines[1]), 10, 64)
	if err != nil {
		return "", false, nil
	}
	holder = strings.TrimSpace(lines[0])
	return holder, holder != "" && now.UnixMilli() < expiry, nil
}

// Acquire takes the lease when it is unheld, expired, or already ours,
// stamping expiry = now + ttl. Returns ErrLeaseHeld while another holder's
// claim is live.
func (l *Lease) Acquire(now time.Time) error {
	holder, live, err := l.Holder(now)
	if err != nil {
		return err
	}
	if live && holder != l.id {
		return fmt.Errorf("%w by %q", ErrLeaseHeld, holder)
	}
	return l.write(now)
}

// Renew extends a held lease. Returns ErrLeaseLost when the file names a
// different live holder — the caller must stop acting as coordinator.
func (l *Lease) Renew(now time.Time) error {
	holder, live, err := l.Holder(now)
	if err != nil {
		return err
	}
	if live && holder != l.id {
		return fmt.Errorf("%w: now held by %q", ErrLeaseLost, holder)
	}
	if !live && holder != l.id {
		// Expired and someone else was the last holder: do not silently
		// resurrect — re-acquire explicitly instead.
		return fmt.Errorf("%w: expired, last holder %q", ErrLeaseLost, holder)
	}
	return l.write(now)
}

// Release gives the lease up immediately (expiry in the past) so a standby
// can take over without waiting out the ttl. Only a current holder's
// release writes; anyone else's is a no-op.
func (l *Lease) Release(now time.Time) error {
	holder, _, err := l.Holder(now)
	if err != nil {
		return err
	}
	if holder != l.id {
		return nil
	}
	return l.writeExpiry(now.UnixMilli() - 1)
}

func (l *Lease) write(now time.Time) error {
	return l.writeExpiry(now.Add(l.ttl).UnixMilli())
}

// writeExpiry atomically replaces the lease file (tmp + rename + dir sync)
// so readers see either the old claim or the new one, never a torn write.
func (l *Lease) writeExpiry(expiryMilli int64) error {
	tmp := l.path + ".tmp"
	f, err := l.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%s\n%d\n", l.id, expiryMilli); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		return err
	}
	return l.fs.SyncDir(filepath.Dir(l.path))
}
