// Redundancy repair and automatic rebalancing. Rereplicate is the
// dead-node path: every tile whose primary or follower lived on the dead
// node gets a replacement pinned through overrides in one epoch bump, and
// the canonical log replays the data onto the new holders. Rebalance is
// the load path: one bounded migration of the hottest tile off the
// most-loaded node. Both are single-flight with migrations — they reuse
// the same epoch-fencing, so no interleaving with queries or ingest can
// produce split-brain reads.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// ErrRepairInFlight reports a second re-replication while one is running.
var ErrRepairInFlight = errors.New("cluster: re-replication already in flight")

// Rereplicate restores redundancy after a node death: tiles the dead node
// owned promote their follower to primary, tiles it followed get a fresh
// follower, the epoch bumps once (journaled), and every live node resyncs
// so the new holders receive their data from the canonical log. The dead
// node stays a member — if it returns, a later Resync reconciles it; while
// it is down, overrides keep every replica on live nodes.
func (s *Store) Rereplicate(dead string) error {
	if _, ok := s.nodes[dead]; !ok {
		return fmt.Errorf("cluster: unknown node %q", dead)
	}
	if !s.repairing.CompareAndSwap(false, true) {
		return ErrRepairInFlight
	}
	defer s.repairing.Store(false)

	s.mu.Lock()
	if len(s.migrating) > 0 {
		s.mu.Unlock()
		return ErrMigrationInFlight
	}
	next := s.assign.Clone()
	if next.FollowerOverrides == nil {
		next.FollowerOverrides = make(map[[2]int]string)
	}
	changed := false
	for t, idxs := range s.tileIndex {
		if len(idxs) == 0 {
			continue
		}
		owner := next.Owner(t)
		follower := next.Follower(t)
		switch {
		case owner == dead:
			if follower == "" || follower == dead {
				// No second replica to promote: the tile stays pinned to the
				// dead node and health reports it until the node returns.
				continue
			}
			// Promote the follower — it holds the complete replica, so the
			// promotion is data-free — and place a fresh follower.
			next.Overrides[t] = follower
			if ownerWithout(next, t) == follower {
				delete(next.Overrides, t)
			}
			delete(next.FollowerOverrides, t)
			if nf := bestReplicaExcluding(next, t, dead); nf != "" {
				if followerWithout(next, t) != nf {
					next.FollowerOverrides[t] = nf
				}
			}
			changed = true
		case next.Replicate && follower == dead:
			if nf := bestReplicaExcluding(next, t, dead); nf != "" {
				if followerWithout(next, t) == nf {
					delete(next.FollowerOverrides, t)
				} else {
					next.FollowerOverrides[t] = nf
				}
				changed = true
			}
		}
	}
	if !changed {
		s.mu.Unlock()
		return nil
	}
	next.Epoch++
	s.assign = next
	s.journalAssignLocked(next)
	s.mu.Unlock()

	// The dead node is presumed unreachable: mark it so reads fail over
	// immediately instead of waiting out a dial timeout.
	if nc := s.nodes[dead]; nc != nil {
		nc.markUnsynced(fmt.Errorf("cluster: node %s declared dead for re-replication", dead))
	}
	s.pushAssignment()

	// Replay data onto the new holders. Resync reads each node's per-tile
	// seq marks and ships only the missing tails, so this is proportional
	// to what actually moved.
	var firstErr error
	for _, nc := range s.sortedNodes() {
		if nc.id == dead {
			continue
		}
		if err := s.Resync(nc.id); err != nil {
			nc.markUnsynced(err)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: rereplicate: resync %s: %w", nc.id, err)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	s.repairs.Add(1)
	return nil
}

// bestReplicaExcluding picks the highest-scoring member for tile t that is
// neither the owner nor any excluded id — the same rendezvous order every
// process computes.
func bestReplicaExcluding(a Assignment, t [2]int, exclude string) string {
	owner := a.Owner(t)
	best, bestScore := "", uint64(0)
	for _, id := range a.Members {
		if id == owner || id == exclude {
			continue
		}
		sc := rendezvousScore(id, t)
		if best == "" || sc > bestScore || (sc == bestScore && id > best) {
			best, bestScore = id, sc
		}
	}
	return best
}

// followerWithout computes the rendezvous follower of tile ignoring
// follower overrides.
func followerWithout(a Assignment, tile [2]int) string {
	saved, had := a.FollowerOverrides[tile]
	delete(a.FollowerOverrides, tile)
	f := a.Follower(tile)
	if had {
		a.FollowerOverrides[tile] = saved
	}
	return f
}

// Rebalance performs one bounded balancing step: migrate the hottest tile
// off the most-loaded node onto the least-loaded one, but only when the
// move strictly narrows the spread (so repeated calls converge instead of
// ping-ponging a tile between two nodes). Returns whether a tile moved.
func (s *Store) Rebalance() (bool, error) {
	type hot struct {
		t [2]int
		n int
	}
	s.mu.RLock()
	if len(s.migrating) > 0 {
		s.mu.RUnlock()
		return false, ErrMigrationInFlight
	}
	load := make(map[string]int, len(s.assign.Members))
	for _, id := range s.assign.Members {
		load[id] = 0
	}
	hottest := make(map[string]hot, len(s.assign.Members))
	for t, idxs := range s.tileIndex {
		if len(idxs) == 0 {
			continue
		}
		owner := s.assign.Owner(t)
		load[owner] += len(idxs)
		if h, ok := hottest[owner]; !ok || len(idxs) > h.n || (len(idxs) == h.n && tileLess(t, h.t)) {
			hottest[owner] = hot{t: t, n: len(idxs)}
		}
	}
	members := append([]string(nil), s.assign.Members...)
	s.mu.RUnlock()

	// Deterministic extremes: ties break toward the lexically smaller id.
	sort.Strings(members)
	var most, least string
	for _, id := range members {
		if nc := s.nodes[id]; nc != nil && nc.isUnsynced() {
			// An unreachable node is neither a source (can't drain it) nor a
			// target (would strand the tile).
			continue
		}
		if most == "" || load[id] > load[most] {
			most = id
		}
		if least == "" || load[id] < load[least] {
			least = id
		}
	}
	if most == "" || least == "" || most == least {
		return false, nil
	}
	h, ok := hottest[most]
	if !ok || h.n == 0 {
		return false, nil
	}
	if load[most]-load[least] <= h.n {
		return false, nil
	}
	if err := s.Migrate(h.t, least); err != nil {
		return false, err
	}
	s.rebalances.Add(1)
	return true, nil
}
