// Coordinator durability: the canonical record log and every assignment
// epoch spill to the coordinator's own WAL + snapshot lineage (the same
// two-phase generation protocol node and server persistence use). Records
// are journaled BEFORE they fan out to any node, so on a coordinator crash
// the journal is always a superset of what any node holds — restart
// rebuilds the log and the assignment from disk and resyncs node tails
// from it, with zero seed-corpus replay.
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"

	"trajforge/internal/fsx"
	"trajforge/internal/rssimap"
	"trajforge/internal/wal"
)

const (
	coordWALName  = "coord.wal"
	coordSnapName = "coord.snap"
)

// Coordinator WAL frame types.
const (
	coordFrameRecords byte = 1 // one ingest batch: u32 count + records
	coordFrameAssign  byte = 2 // one installed assignment (codec assignment)
)

func (s *Store) coordWALPath() string  { return filepath.Join(s.opts.Dir, coordWALName) }
func (s *Store) coordSnapPath() string { return filepath.Join(s.opts.Dir, coordSnapName) }

// openDurability wires the filesystem seam and, when a Dir is configured,
// opens the coordinator WAL and recovers the canonical log plus the last
// journaled assignment from snapshot + log replay. Returns the recovered
// assignment, or nil when none was journaled (or durability is off).
func (s *Store) openDurability() (*Assignment, error) {
	s.fs = s.opts.FS
	if s.fs == nil {
		s.fs = fsx.OS
	}
	if s.opts.Dir == "" {
		return nil, nil
	}
	if err := s.fs.MkdirAll(s.opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: coordinator dir: %w", err)
	}
	log, err := wal.Open(s.coordWALPath(), wal.Options{SyncInterval: s.opts.SyncInterval, FS: s.fs})
	if err != nil {
		return nil, err
	}
	s.wlog = log

	var recovered *Assignment
	snapGen, payload, err := wal.ReadSnapshotFS(s.fs, s.coordSnapPath())
	switch {
	case errors.Is(err, wal.ErrNoSnapshot):
		snapGen = 0
	case err != nil:
		log.Close()
		return nil, err
	default:
		a, err := s.loadCoordSnapshot(payload)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("%w: coordinator snapshot: %v", wal.ErrCorrupt, err)
		}
		recovered = a
	}
	walGen := s.wlog.Generation()
	switch {
	case snapGen > walGen:
		// Crash between snapshot rename and log reset: the snapshot already
		// covers every frame of the stale log.
		if err := s.wlog.Reset(snapGen); err != nil {
			log.Close()
			return nil, err
		}
	case snapGen < walGen && walGen > 1:
		log.Close()
		return nil, fmt.Errorf("%w: coordinator snapshot generation %d behind log generation %d in %s",
			wal.ErrCorrupt, snapGen, walGen, s.opts.Dir)
	default:
		if err := s.wlog.Replay(func(typ byte, payload []byte) error {
			return s.replayCoordFrame(typ, payload, &recovered)
		}); err != nil {
			log.Close()
			return nil, err
		}
	}
	return recovered, nil
}

func (s *Store) replayCoordFrame(typ byte, payload []byte, recovered **Assignment) error {
	r := &reader{data: payload}
	switch typ {
	case coordFrameRecords:
		n, err := r.u32()
		if err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		recs := make([]rssimap.Record, 0, n)
		for i := 0; i < int(n); i++ {
			rec, err := decodeRecord(r)
			if err != nil {
				return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
			}
			recs = append(recs, rec)
		}
		if err := r.done(); err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		s.appendToLogLocked(recs)
		return nil
	case coordFrameAssign:
		a, err := decodeAssignment(r)
		if err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		if err := r.done(); err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		if *recovered == nil || a.Epoch >= (*recovered).Epoch {
			*recovered = &a
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown coordinator frame type %d", wal.ErrCorrupt, typ)
	}
}

// appendToLogLocked appends recovered records to the canonical log and
// rebuilds their tile-index rows (owner tile + halo, the same geometry the
// ingest path uses). Recovery only — stats counters stay untouched.
func (s *Store) appendToLogLocked(recs []rssimap.Record) {
	var tiles [][2]int
	for _, rec := range recs {
		idx := len(s.log)
		s.log = append(s.log, rec)
		tiles = s.cfg.TilesFor(rec.Pos, tiles)
		for _, t := range tiles {
			s.tileIndex[t] = append(s.tileIndex[t], idx)
		}
	}
}

// journalRecordsLocked journals one ingest batch ahead of any node fan-out.
// A journal failure is fatal to ingestion: walErr is set and Add fails
// closed from then on, so the coordinator never acks a record its own
// durable log did not capture. s.mu must be held.
func (s *Store) journalRecordsLocked(recs []rssimap.Record) error {
	if s.wlog == nil {
		return nil
	}
	if s.walErr != nil {
		return s.walErr
	}
	buf := appendU32(nil, uint32(len(recs)))
	var err error
	for _, rec := range recs {
		if buf, err = appendRecord(buf, rec); err != nil {
			return err
		}
	}
	if err := s.wlog.Append(coordFrameRecords, buf); err != nil {
		s.walErr = fmt.Errorf("cluster: coordinator wal failed: %w", err)
		return s.walErr
	}
	return nil
}

// journalAssignLocked journals an installed assignment. Failures degrade
// the coordinator (walErr) but do not block the in-memory epoch bump: the
// fencing guarantee lives on the nodes, and a restart fences above every
// node epoch anyway. s.mu must be held.
func (s *Store) journalAssignLocked(a Assignment) {
	if s.wlog == nil || s.walErr != nil {
		return
	}
	buf, err := appendAssignment(nil, a)
	if err != nil {
		s.walErr = fmt.Errorf("cluster: coordinator wal failed: %w", err)
		return
	}
	if err := s.wlog.Append(coordFrameAssign, buf); err != nil {
		s.walErr = fmt.Errorf("cluster: coordinator wal failed: %w", err)
	}
}

// loadCoordSnapshot decodes a coordinator checkpoint: the canonical record
// log, then the assignment current when it was taken.
func (s *Store) loadCoordSnapshot(payload []byte) (*Assignment, error) {
	r := &reader{data: payload}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	recs := make([]rssimap.Record, 0, n)
	for i := 0; i < int(n); i++ {
		rec, err := decodeRecord(r)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	a, err := decodeAssignment(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	s.appendToLogLocked(recs)
	return &a, nil
}

// Compact checkpoints the coordinator: snapshot the canonical log and the
// current assignment, durably rename it into place, then reset the WAL to
// the next generation — two-phase, crash-safe at every point between.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog == nil {
		return nil
	}
	if s.walErr != nil {
		return s.walErr
	}
	buf := appendU32(nil, uint32(len(s.log)))
	var err error
	for _, rec := range s.log {
		if buf, err = appendRecord(buf, rec); err != nil {
			return err
		}
	}
	if buf, err = appendAssignment(buf, s.assign); err != nil {
		return err
	}
	gen := s.wlog.Generation() + 1
	if err := wal.WriteSnapshotFS(s.fs, s.coordSnapPath(), gen, buf); err != nil {
		return err
	}
	return s.wlog.Reset(gen)
}
