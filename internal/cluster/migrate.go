// Live tile migration. The protocol:
//
//  1. Register: mark the tile migrating; from here on the coordinator
//     buffers new writes for the tile instead of shipping them.
//  2. Drain + freeze: flush the old owner's ordered ingest stream, then
//     freeze the tile (read-only on the old owner — queries keep working
//     through the whole handoff).
//  3. Fetch: read the tile's applied entry log off the old owner — the
//     WAL tail handoff — and top up any missing tail from the canonical
//     log (the old owner might have been behind).
//  4. Install: ship the entries to the new owner in bounded chunks under
//     kindInstall. A crash mid-install leaves a clean prefix; the per-tile
//     sequence gate makes the retried install idempotent.
//  5. Commit: bump the assignment epoch with the tile overridden to the
//     new owner, re-route the buffered writes, push the assignment to
//     every node (which clears freezes), journal a Drop on the old owner.
//
// Any failure before commit aborts: the epoch still bumps (epoch bumps
// are how freezes clear and how every attempt stays totally ordered), but
// ownership is unchanged and the buffered writes flush to the old owner.
// Either way the tile ends owned by exactly one node at the new epoch —
// queries fence on (epoch, owner), so no interleaving of crashes and
// retries can produce split-brain reads.
package cluster

import (
	"errors"
	"fmt"
	"time"
)

// ErrMigrationInFlight reports a second migration while one is running.
var ErrMigrationInFlight = errors.New("cluster: migration already in flight")

// Migrate moves one tile to a new owner, live. Concurrent ingestion and
// queries keep running: writes buffer at the coordinator, reads are served
// by the frozen old owner until the commit flips ownership atomically with
// the epoch bump.
func (s *Store) Migrate(tile [2]int, to string) error {
	s.mu.Lock()
	if _, ok := s.nodes[to]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %q", to)
	}
	if len(s.migrating) > 0 {
		s.mu.Unlock()
		return ErrMigrationInFlight
	}
	if s.repairing.Load() {
		s.mu.Unlock()
		return ErrRepairInFlight
	}
	from := s.assign.Owner(tile)
	epoch := s.assign.Epoch
	if from == to {
		s.mu.Unlock()
		return nil
	}
	s.migrating[tile] = &migration{to: to}
	s.mu.Unlock()

	if err := s.runMigration(tile, from, to, epoch); err != nil {
		s.abortMigration(tile)
		return err
	}
	return nil
}

func (s *Store) runMigration(tile [2]int, from, to string, epoch uint64) error {
	fromNC, toNC := s.nodes[from], s.nodes[to]
	// Both ends must be healthy before the handoff: the old owner is about
	// to be the only holder of a frozen tile, the new owner is about to
	// accept its entire history.
	if fromNC.isUnsynced() {
		if err := s.Resync(from); err != nil {
			return fmt.Errorf("cluster: migrate %v: resync %s: %w", tile, from, err)
		}
	}
	if toNC.isUnsynced() {
		if err := s.Resync(to); err != nil {
			return fmt.Errorf("cluster: migrate %v: resync %s: %w", tile, to, err)
		}
	}

	// Drain, then freeze. The freeze rides the ordered ingest stream, so
	// every previously shipped batch lands before the tile goes read-only.
	if err := fromNC.flush(s); err != nil {
		return fmt.Errorf("cluster: migrate %v: drain %s: %w", tile, from, err)
	}
	fromNC.sendMu.Lock()
	ack, err := fromNC.ackCallLocked(&FreezeReq{Epoch: epoch, Tile: tile})
	fromNC.sendMu.Unlock()
	if err != nil {
		fromNC.markUnsynced(err)
		return fmt.Errorf("cluster: migrate %v: freeze on %s: %w", tile, from, err)
	}
	if ack.Status != statusOK {
		return fmt.Errorf("cluster: migrate %v: freeze on %s: status %d %s", tile, from, ack.Status, ack.Msg)
	}

	// Fetch the tile's applied log (the WAL-tail handoff). Failure here is
	// survivable: the canonical log can rebuild the tile alone.
	var handoff []Entry
	if resp, err := fromNC.call(&FetchTileReq{Epoch: epoch, Tile: tile}, time.Time{}); err == nil {
		if ts, ok := resp.(*TileState); ok && ts.Status == statusOK {
			handoff = ts.Entries
		}
	}
	handoff = s.topUpHandoff(tile, handoff)

	// Install on the new owner in bounded chunks.
	if err := s.installHandoff(toNC, epoch, handoff); err != nil {
		return fmt.Errorf("cluster: migrate %v: install on %s: %w", tile, to, err)
	}

	// With replication on, the post-commit follower may be a node holding
	// nothing for this tile (the move displaces the rendezvous follower).
	// Install the same handoff there ahead of the commit — same seqs, so
	// the install is idempotent and either replica serves identical bits
	// from the first post-commit query. An old owner staying on as follower
	// needs nothing: it already holds everything up to the freeze. Follower
	// install failure is survivable (Resync heals it) and must not abort an
	// otherwise-complete handoff.
	s.mu.RLock()
	prospective := migratedAssign(s.assign, tile, to)
	oldFollower := s.assign.Follower(tile)
	s.mu.RUnlock()
	if nf := prospective.Follower(tile); nf != "" && nf != to && nf != from {
		if fnc := s.nodes[nf]; fnc != nil {
			if err := s.installHandoff(fnc, epoch, handoff); err != nil {
				fnc.markUnsynced(fmt.Errorf("cluster: migrate %v: follower install on %s: %w", tile, nf, err))
			}
		}
	}

	// Commit: epoch bump + override + buffered-write re-route, atomically
	// under the coordinator lock, journaled before any node hears of it.
	s.mu.Lock()
	next := migratedAssign(s.assign, tile, to)
	s.assign = next
	s.journalAssignLocked(next)
	mig := s.migrating[tile]
	delete(s.migrating, tile)
	var flushTargets []*nodeClient
	if mig != nil && len(mig.buffer) > 0 {
		toNC.enqueue(&AddReq{Epoch: next.Epoch, Entries: mig.buffer})
		flushTargets = append(flushTargets, toNC)
		if nf := next.Follower(tile); nf != "" && nf != to {
			if fnc := s.nodes[nf]; fnc != nil {
				fnc.enqueue(&AddReq{Epoch: next.Epoch, Entries: mig.buffer})
				flushTargets = append(flushTargets, fnc)
			}
		}
	}
	s.mu.Unlock()
	s.migrations.Add(1)

	// Publish the new world, retire copies on nodes that no longer hold a
	// replica, deliver buffered writes.
	s.pushAssignment()
	for _, id := range []string{from, oldFollower} {
		if id == "" || next.replicaOf(tile, id) {
			continue
		}
		nc := s.nodes[id]
		if nc == nil {
			continue
		}
		nc.sendMu.Lock()
		ack, err := nc.ackCallLocked(&DropReq{Epoch: next.Epoch, Tile: tile})
		nc.sendMu.Unlock()
		if err != nil {
			nc.markUnsynced(err)
		} else if ack.Status != statusOK {
			nc.markUnsynced(fmt.Errorf("cluster: drop %v on %s: status %d %s", tile, id, ack.Status, ack.Msg))
		}
	}
	for _, nc := range flushTargets {
		if err := nc.flush(s); err != nil {
			nc.markUnsynced(err)
		}
	}
	return nil
}

// installHandoff ships a tile's entry log to one node in bounded chunks
// under kindInstall. A crash mid-install leaves a clean prefix; the
// per-tile sequence gate makes a retried install idempotent.
func (s *Store) installHandoff(nc *nodeClient, epoch uint64, handoff []Entry) error {
	nc.sendMu.Lock()
	defer nc.sendMu.Unlock()
	for off := 0; off < len(handoff); off += addChunk {
		end := off + addChunk
		if end > len(handoff) {
			end = len(handoff)
		}
		ack, err := nc.ackCallLocked(&InstallReq{Epoch: epoch, Entries: handoff[off:end]})
		if err != nil {
			nc.markUnsynced(err)
			return err
		}
		if ack.Status != statusOK {
			return fmt.Errorf("status %d %s", ack.Status, ack.Msg)
		}
	}
	return nil
}

// migratedAssign computes the assignment after committing a migration of
// tile to `to`: epoch bump, ownership override (trimmed when rendezvous
// already agrees), and follower-override cleanup so a pinned follower can
// never alias the new owner.
func migratedAssign(a Assignment, tile [2]int, to string) Assignment {
	next := a.Clone()
	next.Epoch++
	next.Overrides[tile] = to
	if ownerWithout(next, tile) == to {
		// The override is redundant under rendezvous; keep the map minimal.
		delete(next.Overrides, tile)
	}
	if next.FollowerOverrides[tile] == to {
		delete(next.FollowerOverrides, tile)
	}
	return next
}

// ownerWithout computes the rendezvous owner of tile ignoring overrides.
func ownerWithout(a Assignment, tile [2]int) string {
	saved, had := a.Overrides[tile]
	delete(a.Overrides, tile)
	owner := a.Owner(tile)
	if had {
		a.Overrides[tile] = saved
	}
	return owner
}

// topUpHandoff extends the fetched entry log with any canonical tail the
// old owner had not applied, keeping seq order.
func (s *Store) topUpHandoff(tile [2]int, handoff []Entry) []Entry {
	var have uint64
	if n := len(handoff); n > 0 {
		have = handoff[n-1].Seq
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, idx := range s.tileIndex[tile] {
		seq := uint64(idx) + 1
		if seq <= have {
			continue
		}
		handoff = append(handoff, Entry{Tile: tile, Seq: seq, Rec: s.log[idx]})
	}
	return handoff
}

// abortMigration rolls a failed handoff back: ownership is unchanged, but
// the epoch still bumps — the assignment push that follows clears the
// freeze on the old owner — and buffered writes flush to the old owner.
func (s *Store) abortMigration(tile [2]int) {
	s.mu.Lock()
	mig := s.migrating[tile]
	delete(s.migrating, tile)
	next := s.assign.Clone()
	next.Epoch++
	s.assign = next
	s.journalAssignLocked(next)
	owner := next.Owner(tile)
	var targets []*nodeClient
	if mig != nil && len(mig.buffer) > 0 {
		if nc := s.nodes[owner]; nc != nil {
			nc.enqueue(&AddReq{Epoch: next.Epoch, Entries: mig.buffer})
			targets = append(targets, nc)
		}
		if f := next.Follower(tile); f != "" && f != owner {
			if nc := s.nodes[f]; nc != nil {
				nc.enqueue(&AddReq{Epoch: next.Epoch, Entries: mig.buffer})
				targets = append(targets, nc)
			}
		}
	}
	s.mu.Unlock()
	s.aborted.Add(1)

	s.pushAssignment()
	for _, nc := range targets {
		if err := nc.flush(s); err != nil {
			nc.markUnsynced(err)
		}
	}
}
