package cluster

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/wifi"
)

// sampleMessages returns one representative message per frame kind,
// exercising negatives, exact float bits, and empty collections.
func sampleMessages() []any {
	rec := rssimap.Record{
		Pos:  geo.Point{X: -12.53125, Y: 118.790001},
		RSSI: map[string]int{"02:4e:00:00:00:01": -61, "02:4e:00:00:00:0a": -44},
	}
	entries := []Entry{
		{Tile: [2]int{-1, 0}, Seq: 1, Rec: rec},
		{Tile: [2]int{3, -7}, Seq: 2, Rec: rssimap.Record{Pos: geo.Point{X: 0, Y: 0}, RSSI: map[string]int{}}},
	}
	assign := Assignment{
		Epoch:   9,
		Members: []string{"n1", "n2", "n3"},
		Overrides: map[[2]int]string{
			{-2, 5}: "n3",
			{1, 1}:  "n1",
		},
	}
	return []any{
		&Hello{Deadline: 1500, NodeID: "coordinator"},
		&Ack{Status: statusWrongEpoch, Epoch: 7, Msg: "node epoch 7"},
		&AddReq{Deadline: 250, Epoch: 3, Entries: entries},
		(*InstallReq)(&AddReq{Epoch: 3, Entries: entries[:1]}),
		&ConfReq{
			Deadline: 90,
			Epoch:    3,
			Tile:     [2]int{-4, 2},
			Pos:      geo.Point{X: math.Pi, Y: -math.SmallestNonzeroFloat64},
			Cfg:      rssimap.DefaultFeatureConfig(),
			Scan:     wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -60}, {MAC: "02:4e:00:00:00:01", RSSI: -60}},
		},
		&ConfResp{Status: statusOK, Epoch: 3, Confs: []rssimap.PointConfidence{
			{MAC: "02:4e:00:00:00:01", Phi: 0.37500000000001, Num: 12, Residual: 1.25, Heard: 3},
			{MAC: "", Phi: 0, Num: 0, Residual: 0, Heard: 0},
		}},
		(*FreezeReq)(&TileReq{Deadline: 40, Epoch: 3, Tile: [2]int{2, 2}}),
		(*FetchTileReq)(&TileReq{Epoch: 3, Tile: [2]int{-2147483648, 2147483647}}),
		(*DropReq)(&TileReq{Epoch: 4, Tile: [2]int{0, 0}}),
		&TileState{Status: statusOK, Epoch: 3, Entries: entries},
		&AssignReq{Deadline: 12, Assign: assign},
		&SeqsReq{Deadline: 5},
		&SeqsResp{Status: statusOK, Epoch: 4, Tiles: []TileSeq{
			{Tile: [2]int{-1, -1}, Seq: 44}, {Tile: [2]int{-1, 0}, Seq: 2}, {Tile: [2]int{5, 5}, Seq: 1},
		}},
		&StatsReq{},
		&StatsResp{Status: statusOK, Epoch: 4, Tiles: 12, Entries: 300, WALFrames: 17, WALBytes: 8812, Generation: 2},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, msg := range sampleMessages() {
		frame, err := EncodeFrame(msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		dec, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if reflect.TypeOf(dec) != reflect.TypeOf(msg) {
			t.Fatalf("%T decoded as %T", msg, dec)
		}
		re, err := EncodeFrame(dec)
		if err != nil {
			t.Fatalf("%T: re-encode: %v", msg, err)
		}
		if !bytes.Equal(frame, re) {
			t.Fatalf("%T: encode(decode(frame)) != frame:\n% x\n% x", msg, frame, re)
		}
	}
}

func TestCodecTruncationRejected(t *testing.T) {
	for _, msg := range sampleMessages() {
		frame, err := EncodeFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(frame); n++ {
			if _, err := DecodeFrame(frame[:n]); err == nil {
				t.Fatalf("%T: %d-byte prefix of a %d-byte frame decoded", msg, n, len(frame))
			}
		}
		// Trailing garbage must be rejected too.
		if _, err := DecodeFrame(append(append([]byte(nil), frame...), 0)); err == nil {
			t.Fatalf("%T: frame with a trailing byte decoded", msg)
		}
	}
}

func TestCodecRejectsNonCanonical(t *testing.T) {
	t.Run("bad version", func(t *testing.T) {
		frame, _ := EncodeFrame(&SeqsReq{})
		frame[0] = 9
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		frame, _ := EncodeFrame(&SeqsReq{})
		frame[1] = 200
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrKind) {
			t.Fatalf("got %v, want ErrKind", err)
		}
	})
	t.Run("payload length lies short", func(t *testing.T) {
		frame, _ := EncodeFrame(&Hello{NodeID: "x"})
		frame[2]-- // declare one byte less than present
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrOversized) {
			t.Fatalf("got %v, want ErrOversized", err)
		}
	})
	t.Run("unsorted rssi map", func(t *testing.T) {
		// Encode a two-AP record, then swap the MAC order on the wire.
		req := &AddReq{Epoch: 1, Entries: []Entry{{
			Tile: [2]int{0, 0}, Seq: 1,
			Rec: rssimap.Record{RSSI: map[string]int{"aa": -50, "bb": -51}},
		}}}
		frame, err := EncodeFrame(req)
		if err != nil {
			t.Fatal(err)
		}
		a := bytes.Index(frame, []byte("aa"))
		b := bytes.Index(frame, []byte("bb"))
		if a < 0 || b < 0 || a > b {
			t.Fatalf("unexpected encoding layout")
		}
		frame[a], frame[a+1], frame[b], frame[b+1] = 'b', 'b', 'a', 'a'
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrValue) {
			t.Fatalf("got %v, want ErrValue", err)
		}
	})
	t.Run("duplicate mac", func(t *testing.T) {
		req := &AddReq{Epoch: 1, Entries: []Entry{{
			Tile: [2]int{0, 0}, Seq: 1,
			Rec: rssimap.Record{RSSI: map[string]int{"aa": -50, "ab": -51}},
		}}}
		frame, err := EncodeFrame(req)
		if err != nil {
			t.Fatal(err)
		}
		i := bytes.Index(frame, []byte("ab"))
		frame[i+1] = 'a' // now two "aa" entries
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrValue) {
			t.Fatalf("got %v, want ErrValue", err)
		}
	})
	t.Run("unsorted assignment members", func(t *testing.T) {
		req := &AssignReq{Assign: Assignment{Epoch: 1, Members: []string{"n1", "n2"}}}
		frame, err := EncodeFrame(req)
		if err != nil {
			t.Fatal(err)
		}
		i := bytes.Index(frame, []byte("n1"))
		j := bytes.Index(frame, []byte("n2"))
		frame[i+1], frame[j+1] = '2', '1'
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrValue) {
			t.Fatalf("got %v, want ErrValue", err)
		}
	})
	t.Run("oversized count claim", func(t *testing.T) {
		frame, _ := EncodeFrame(&AddReq{Epoch: 1})
		// Entry count sits in the last 4 payload bytes; claim 2^31 entries.
		frame[len(frame)-1] = 0x80
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrOversized) {
			t.Fatalf("got %v, want ErrOversized", err)
		}
	})
	t.Run("unknown feature flags", func(t *testing.T) {
		req := &ConfReq{Epoch: 1, Cfg: rssimap.DefaultFeatureConfig(), Scan: nil}
		frame, err := EncodeFrame(req)
		if err != nil {
			t.Fatal(err)
		}
		// The flags byte sits 3 bytes before the trailing empty-scan u16.
		frame[len(frame)-3] |= 0x80
		if _, err := DecodeFrame(frame); !errors.Is(err, ErrValue) {
			t.Fatalf("got %v, want ErrValue", err)
		}
	})
}

func TestAssignmentOwnerStableAndComplete(t *testing.T) {
	a, err := NewAssignment([]string{"n2", "n1", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for x := -20; x < 20; x++ {
		for y := -20; y < 20; y++ {
			owner := a.Owner([2]int{x, y})
			if !a.hasMember(owner) {
				t.Fatalf("tile (%d,%d) owner %q not a member", x, y, owner)
			}
			counts[owner]++
			// Member order must not matter.
			b := a.Clone()
			b.Members = []string{"n3", "n1", "n2"}
			if got := b.Owner([2]int{x, y}); got != owner {
				t.Fatalf("owner depends on member order: %q vs %q", owner, got)
			}
		}
	}
	// Rendezvous hashing should spread 1600 tiles over all three nodes.
	for _, id := range a.Members {
		if counts[id] == 0 {
			t.Fatalf("member %q owns no tiles: %v", id, counts)
		}
	}
	// Overrides win.
	tile := [2]int{0, 0}
	a.Overrides[tile] = "n2"
	if got := a.Owner(tile); got != "n2" {
		t.Fatalf("override ignored: %q", got)
	}
	// Removing a member moves only that member's tiles.
	reduced, err := NewAssignment([]string{"n1", "n2"})
	if err != nil {
		t.Fatal(err)
	}
	for x := -20; x < 20; x++ {
		for y := -20; y < 20; y++ {
			was := Assignment{Members: []string{"n1", "n2", "n3"}}.Owner([2]int{x, y})
			now := reduced.Owner([2]int{x, y})
			if was != "n3" && was != now {
				t.Fatalf("tile (%d,%d) moved from %q to %q although %q is still a member", x, y, was, now, was)
			}
		}
	}
	if _, err := NewAssignment([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewAssignment([]string{""}); err == nil {
		t.Fatal("empty member accepted")
	}
}

func FuzzClusterCodec(f *testing.F) {
	for _, msg := range sampleMessages() {
		frame, err := EncodeFrame(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{codecVersion, kindAdd})
	f.Add([]byte{codecVersion, kindAdd, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeFrame(data)
		if err != nil {
			return
		}
		re, err := EncodeFrame(msg)
		if err != nil {
			t.Fatalf("accepted frame refuses to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n in % x\nout % x", data, re)
		}
	})
}

// TestRegenClusterCodecCorpus rewrites the checked-in fuzz corpus from the
// current encoders. Skipped unless REGEN_CORPUS=1 — run it after a wire
// format change so the corpus keeps seeding real frames.
func TestRegenClusterCodecCorpus(t *testing.T) {
	if os.Getenv("REGEN_CORPUS") == "" {
		t.Skip("set REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzClusterCodec")
	}
	entries := map[string][]byte{}
	for _, msg := range sampleMessages() {
		frame, err := EncodeFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		name := "seed-" + reflect.TypeOf(msg).Elem().Name()
		entries[name] = frame
	}
	add, _ := EncodeFrame(&AddReq{Epoch: 1, Entries: []Entry{{Seq: 1, Rec: rssimap.Record{RSSI: map[string]int{"aa": -50}}}}})
	entries["seed-truncated"] = add[:len(add)/2]
	bad := append([]byte(nil), add...)
	bad[0] = 99
	entries["seed-bad-version"] = bad
	entries["seed-header-only"] = []byte{codecVersion, kindHello, 0, 0, 0, 0}
	dir := filepath.Join("testdata", "fuzz", "FuzzClusterCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range entries {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
