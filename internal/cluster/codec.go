// Shard-transport codec: the compact binary RPC frames the coordinator and
// shard nodes exchange. The framing discipline is internal/server's wire
// codec — fixed little-endian fields, u8/u16 length prefixes for strings,
// exact IEEE-754 bits for every float — so a record or a confidence vector
// crosses a node boundary without losing a single bit, and a verdict
// computed against a remote tile is bit-identical to one computed against
// the same tile in-process.
//
// Frame layout (little endian):
//
//	u8 version (2) | u8 kind | u32 payloadLen | payload
//
// Version 2 added the contributor identity (str8) to every record — the
// ingestion provenance the trust pipeline relies on — so provenance
// crosses node boundaries and tile migrations bit-identically. The codec
// also frames each node's tile WAL, so a node's durable lineage carries
// provenance too. Version 1 frames are refused (a cluster is always one
// build).
//
// Every request payload starts with `u32 deadlineMs` — the milliseconds the
// originating request has left, 0 for none — so a node can stop working on
// a forward whose client deadline already passed, and the coordinator's
// admission accounting sees remote time bounded by the same clock as local
// time. Requests that mutate or read tile state also carry the sender's
// assignment epoch; a node answers statusWrongEpoch when the epochs
// disagree, which is the fencing that prevents a stale coordinator or a
// half-migrated tile from being served by two owners.
//
// The encoding is canonical — fixed field order, RSSI maps sorted by MAC,
// assignment members and overrides sorted, payloadLen checked exactly, no
// trailing bytes — so encode(decode(frame)) reproduces the frame byte for
// byte; FuzzClusterCodec pins that property.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"trajforge/internal/geo"
	"trajforge/internal/rssimap"
	"trajforge/internal/wifi"
)

const (
	codecVersion = 2

	// maxFrameBytes bounds one frame on the wire (header + payload).
	maxFrameBytes = 32 << 20
)

// Message kinds. Requests are odd, responses even.
const (
	kindHello     byte = 1  // coordinator introduces itself to a node
	kindAck       byte = 2  // generic response: status + node epoch
	kindAdd       byte = 3  // ingest a batch of (tile, seq, record) entries
	kindConf      byte = 5  // point-confidence query against one tile
	kindConfResp  byte = 6  // confidence vector reply
	kindFreeze    byte = 7  // mark a tile read-only ahead of migration
	kindFetchTile byte = 9  // read a tile's full entry log (migration handoff)
	kindTileState byte = 10 // fetchTile reply
	kindInstall   byte = 11 // install handed-off entries on the new owner
	kindDrop      byte = 13 // drop a migrated-away tile
	kindAssign    byte = 15 // push a new assignment map (epoch bump)
	kindTileSeqs  byte = 17 // read per-tile applied sequence numbers
	kindSeqsResp  byte = 18 // tileSeqs reply
	kindStats     byte = 19 // read node occupancy counters
	kindStatsResp byte = 20 // stats reply
)

// Response status codes.
const (
	statusOK         byte = 0
	statusWrongEpoch byte = 1 // sender epoch != node epoch; body carries the node's
	statusNotOwner   byte = 2 // tile not assigned to this node at this epoch
	statusFrozen     byte = 3 // tile is frozen for migration (writes rejected)
	statusFailed     byte = 4 // node-side failure (message in Msg)
	statusExpired    byte = 5 // request deadline already expired; refused unworked
)

// Typed decode failures, distinguishable with errors.Is.
var (
	// ErrTruncated: the frame ends before a declared field.
	ErrTruncated = errors.New("cluster: truncated frame")
	// ErrOversized: a declared count cannot fit the frame's bytes, or the
	// payload length disagrees with the body.
	ErrOversized = errors.New("cluster: oversized frame")
	// ErrVersion: the version byte is not one this node speaks.
	ErrVersion = errors.New("cluster: unsupported frame version")
	// ErrKind: the kind byte is unknown or wrong for the context.
	ErrKind = errors.New("cluster: unexpected frame kind")
	// ErrValue: a field holds a value with no wire meaning (an unsorted
	// RSSI map, an out-of-range length, a non-canonical assignment).
	ErrValue = errors.New("cluster: invalid frame value")
)

// Hello is the connection preamble the coordinator sends.
type Hello struct {
	Deadline uint32
	NodeID   string
}

// Ack is the generic response: a status, the node's current epoch, and an
// optional message (the error text for statusFailed).
type Ack struct {
	Status byte
	Epoch  uint64
	Msg    string
}

// Entry is one record destined for one tile, stamped with its canonical-log
// sequence number. The sequence is the replication cursor: nodes apply an
// entry only when Seq exceeds the tile's last applied sequence, which makes
// batches, migration installs, and resyncs idempotent.
type Entry struct {
	Tile [2]int
	Seq  uint64
	Rec  rssimap.Record
}

// AddReq ingests a batch of entries (kindAdd) or installs a handed-off tile
// log on a migration target (kindInstall).
type AddReq struct {
	Deadline uint32
	Epoch    uint64
	Entries  []Entry
}

// ConfReq asks the owner of Tile for the point confidences of one scan.
type ConfReq struct {
	Deadline uint32
	Epoch    uint64
	Tile     [2]int
	Pos      geo.Point
	Cfg      rssimap.FeatureConfig
	Scan     wifi.Scan
}

// ConfResp answers a ConfReq.
type ConfResp struct {
	Status byte
	Epoch  uint64
	Msg    string
	Confs  []rssimap.PointConfidence
}

// TileReq addresses one tile: freeze (kindFreeze), fetch (kindFetchTile),
// or drop (kindDrop).
type TileReq struct {
	Deadline uint32
	Epoch    uint64
	Tile     [2]int
}

// TileState answers a kindFetchTile with the tile's entry log in applied
// order — the WAL tail the migration hands to the new owner.
type TileState struct {
	Status  byte
	Epoch   uint64
	Msg     string
	Entries []Entry
}

// AssignReq pushes a new assignment map to a node.
type AssignReq struct {
	Deadline uint32
	Assign   Assignment
}

// SeqsReq asks a node for its per-tile applied sequence numbers (resync).
type SeqsReq struct {
	Deadline uint32
}

// TileSeq is one tile's applied-sequence high-water mark.
type TileSeq struct {
	Tile [2]int
	Seq  uint64
}

// SeqsResp answers a kindTileSeqs.
type SeqsResp struct {
	Status byte
	Epoch  uint64
	Msg    string
	Tiles  []TileSeq
}

// StatsReq asks a node for occupancy counters.
type StatsReq struct {
	Deadline uint32
}

// StatsResp answers a kindStats.
type StatsResp struct {
	Status     byte
	Epoch      uint64
	Msg        string
	Tiles      uint32
	Entries    uint64
	WALFrames  uint64
	WALBytes   int64
	Generation uint64
	// ExpiredRejects counts requests the node refused unworked because
	// their wire deadline had already expired on arrival.
	ExpiredRejects uint64
}

// reader is a bounds-checked cursor over one frame.
type reader struct {
	data []byte
	off  int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) || r.off+n < 0 {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.data))
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

// str16 reads a u16-length-prefixed string.
func (r *reader) str16() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// str8 reads a u8-length-prefixed string.
func (r *reader) str8() (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) tile() ([2]int, error) {
	x, err := r.u32()
	if err != nil {
		return [2]int{}, err
	}
	y, err := r.u32()
	if err != nil {
		return [2]int{}, err
	}
	return [2]int{int(int32(x)), int(int32(y))}, nil
}

func (r *reader) done() error {
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrOversized, len(r.data)-r.off)
	}
	return nil
}

// header parses the three-field frame header, returning the kind and the
// payload cursor.
func header(data []byte) (byte, *reader, error) {
	r := &reader{data: data}
	ver, err := r.u8()
	if err != nil {
		return 0, nil, err
	}
	if ver != codecVersion {
		return 0, nil, fmt.Errorf("%w: got version %d, speak %d", ErrVersion, ver, codecVersion)
	}
	kind, err := r.u8()
	if err != nil {
		return 0, nil, err
	}
	plen, err := r.u32()
	if err != nil {
		return 0, nil, err
	}
	rest := len(data) - r.off
	if int64(plen) > int64(rest) {
		return 0, nil, fmt.Errorf("%w: header declares %d payload bytes, %d present", ErrTruncated, plen, rest)
	}
	if int(plen) < rest {
		return 0, nil, fmt.Errorf("%w: header declares %d payload bytes, %d present", ErrOversized, plen, rest)
	}
	return kind, r, nil
}

// --- encoder helpers ---

func appendStr16(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: string of %d bytes", ErrValue, len(s))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

func appendStr8(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint8 {
		return nil, fmt.Errorf("%w: string of %d bytes", ErrValue, len(s))
	}
	buf = append(buf, byte(len(s)))
	return append(buf, s...), nil
}

func appendTile(buf []byte, t [2]int) ([]byte, error) {
	if t[0] < math.MinInt32 || t[0] > math.MaxInt32 || t[1] < math.MinInt32 || t[1] > math.MaxInt32 {
		return nil, fmt.Errorf("%w: tile %v outside int32", ErrValue, t)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(t[0])))
	return binary.LittleEndian.AppendUint32(buf, uint32(int32(t[1]))), nil
}

// newFrame starts a frame of the given kind with the 6-byte header slot.
func newFrame(kind byte, sizeHint int) []byte {
	buf := make([]byte, 6, 6+sizeHint)
	buf[0], buf[1] = codecVersion, kind
	return buf
}

// finishFrame stamps the payload length into the reserved header slot.
func finishFrame(buf []byte) ([]byte, error) {
	if len(buf) > maxFrameBytes {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds %d", ErrValue, len(buf), maxFrameBytes)
	}
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(buf)-6))
	return buf, nil
}

// --- record / entry ---

// appendRecord encodes one record with its RSSI map in ascending-MAC order,
// the canonical form decodeRecord enforces.
func appendRecord(buf []byte, rec rssimap.Record) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Pos.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Pos.Y))
	if len(rec.RSSI) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: record reports %d APs", ErrValue, len(rec.RSSI))
	}
	macs := make([]string, 0, len(rec.RSSI))
	for mac := range rec.RSSI {
		macs = append(macs, mac)
	}
	sort.Strings(macs)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(macs)))
	var err error
	for _, mac := range macs {
		if buf, err = appendStr8(buf, mac); err != nil {
			return nil, err
		}
		rssi := rec.RSSI[mac]
		if rssi < math.MinInt16 || rssi > math.MaxInt16 {
			return nil, fmt.Errorf("%w: RSSI %d outside int16", ErrValue, rssi)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(rssi)))
	}
	if buf, err = appendStr8(buf, rec.Contributor); err != nil {
		return nil, err
	}
	return buf, nil
}

// recMinBytes is the fixed per-record wire cost (pos + AP count +
// contributor length byte).
const recMinBytes = 8 + 8 + 2 + 1

func decodeRecord(r *reader) (rssimap.Record, error) {
	var rec rssimap.Record
	x, err := r.f64()
	if err != nil {
		return rec, err
	}
	y, err := r.f64()
	if err != nil {
		return rec, err
	}
	n, err := r.u16()
	if err != nil {
		return rec, err
	}
	rec.Pos = geo.Point{X: x, Y: y}
	rec.RSSI = make(map[string]int, n)
	prev := ""
	for i := 0; i < int(n); i++ {
		mac, err := r.str8()
		if err != nil {
			return rec, err
		}
		if i > 0 && mac <= prev {
			return rec, fmt.Errorf("%w: RSSI map not in strict MAC order (%q after %q)", ErrValue, mac, prev)
		}
		prev = mac
		rssi, err := r.u16()
		if err != nil {
			return rec, err
		}
		rec.RSSI[mac] = int(int16(rssi))
	}
	if rec.Contributor, err = r.str8(); err != nil {
		return rec, err
	}
	return rec, nil
}

// entryMinBytes is the fixed per-entry wire cost (tile + seq + record min).
const entryMinBytes = 8 + 8 + recMinBytes

func appendEntry(buf []byte, e Entry) ([]byte, error) {
	buf, err := appendTile(buf, e.Tile)
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	return appendRecord(buf, e.Rec)
}

func decodeEntries(r *reader) ([]Entry, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(n)*entryMinBytes > int64(len(r.data)-r.off) {
		return nil, fmt.Errorf("%w: claims %d entries in %d payload bytes", ErrOversized, n, len(r.data)-r.off)
	}
	entries := make([]Entry, n)
	for i := range entries {
		if entries[i].Tile, err = r.tile(); err != nil {
			return nil, err
		}
		if entries[i].Seq, err = r.u64(); err != nil {
			return nil, err
		}
		if entries[i].Rec, err = decodeRecord(r); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

func appendEntries(buf []byte, entries []Entry) ([]byte, error) {
	if len(entries) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: %d entries", ErrValue, len(entries))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	var err error
	for _, e := range entries {
		if buf, err = appendEntry(buf, e); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// --- scan / feature config / confidences ---

func appendScan(buf []byte, scan wifi.Scan) ([]byte, error) {
	if len(scan) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: scan of %d observations", ErrValue, len(scan))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(scan)))
	var err error
	for _, obs := range scan {
		if buf, err = appendStr8(buf, obs.MAC); err != nil {
			return nil, err
		}
		if obs.RSSI < math.MinInt16 || obs.RSSI > math.MaxInt16 {
			return nil, fmt.Errorf("%w: RSSI %d outside int16", ErrValue, obs.RSSI)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(obs.RSSI)))
	}
	return buf, nil
}

func decodeScan(r *reader) (wifi.Scan, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	scan := make(wifi.Scan, 0, n)
	for i := 0; i < int(n); i++ {
		mac, err := r.str8()
		if err != nil {
			return nil, err
		}
		rssi, err := r.u16()
		if err != nil {
			return nil, err
		}
		scan = append(scan, wifi.Observation{MAC: mac, RSSI: int(int16(rssi))})
	}
	return scan, nil
}

// Feature-config flag bits.
const (
	cfgIncludeNum       = 1 << 0
	cfgIncludeResiduals = 1 << 1
	cfgDisableTheta2    = 1 << 2
	cfgIncludeSummary   = 1 << 3
	cfgFlagsMask        = cfgIncludeNum | cfgIncludeResiduals | cfgDisableTheta2 | cfgIncludeSummary
)

func appendFeatureConfig(buf []byte, cfg rssimap.FeatureConfig) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.R))
	if cfg.TopK < 0 || cfg.TopK > math.MaxUint16 {
		return nil, fmt.Errorf("%w: TopK %d outside uint16", ErrValue, cfg.TopK)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(cfg.TopK))
	if cfg.Tol < math.MinInt16 || cfg.Tol > math.MaxInt16 {
		return nil, fmt.Errorf("%w: Tol %d outside int16", ErrValue, cfg.Tol)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(cfg.Tol)))
	var flags byte
	if cfg.IncludeNum {
		flags |= cfgIncludeNum
	}
	if cfg.IncludeResiduals {
		flags |= cfgIncludeResiduals
	}
	if cfg.DisableTheta2 {
		flags |= cfgDisableTheta2
	}
	if cfg.IncludeSummary {
		flags |= cfgIncludeSummary
	}
	return append(buf, flags), nil
}

func decodeFeatureConfig(r *reader) (rssimap.FeatureConfig, error) {
	var cfg rssimap.FeatureConfig
	rr, err := r.f64()
	if err != nil {
		return cfg, err
	}
	topk, err := r.u16()
	if err != nil {
		return cfg, err
	}
	tol, err := r.u16()
	if err != nil {
		return cfg, err
	}
	flags, err := r.u8()
	if err != nil {
		return cfg, err
	}
	if flags&^byte(cfgFlagsMask) != 0 {
		return cfg, fmt.Errorf("%w: unknown feature-config flags %#x", ErrValue, flags)
	}
	cfg.R = rr
	cfg.TopK = int(topk)
	cfg.Tol = rssimap.Tolerance(int16(tol))
	cfg.IncludeNum = flags&cfgIncludeNum != 0
	cfg.IncludeResiduals = flags&cfgIncludeResiduals != 0
	cfg.DisableTheta2 = flags&cfgDisableTheta2 != 0
	cfg.IncludeSummary = flags&cfgIncludeSummary != 0
	return cfg, nil
}

// confMinBytes is the fixed per-confidence wire cost.
const confMinBytes = 1 + 8 + 4 + 8 + 4

func appendConfs(buf []byte, confs []rssimap.PointConfidence) ([]byte, error) {
	if len(confs) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: %d confidences", ErrValue, len(confs))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(confs)))
	var err error
	for _, c := range confs {
		if buf, err = appendStr8(buf, c.MAC); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Phi))
		if c.Num < 0 || int64(c.Num) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: Num %d outside uint32", ErrValue, c.Num)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Num))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Residual))
		if c.Heard < 0 || int64(c.Heard) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: Heard %d outside uint32", ErrValue, c.Heard)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Heard))
	}
	return buf, nil
}

func decodeConfs(r *reader) ([]rssimap.PointConfidence, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(n)*confMinBytes > int64(len(r.data)-r.off) {
		return nil, fmt.Errorf("%w: claims %d confidences in %d payload bytes", ErrOversized, n, len(r.data)-r.off)
	}
	confs := make([]rssimap.PointConfidence, n)
	for i := range confs {
		if confs[i].MAC, err = r.str8(); err != nil {
			return nil, err
		}
		if confs[i].Phi, err = r.f64(); err != nil {
			return nil, err
		}
		num, err := r.u32()
		if err != nil {
			return nil, err
		}
		confs[i].Num = int(num)
		// Cluster nodes never install contributor trust tables, so the
		// trusted mass always equals the cardinality and is not carried on
		// the wire.
		confs[i].TrustNum = float64(num)
		if confs[i].Residual, err = r.f64(); err != nil {
			return nil, err
		}
		heard, err := r.u32()
		if err != nil {
			return nil, err
		}
		confs[i].Heard = int(heard)
	}
	return confs, nil
}

// --- assignment ---

// Assignment flag bits.
const (
	assignReplicate = 1 << 0
	assignFlagsMask = assignReplicate
)

// appendOverrideMap encodes one tile→node map in strict tile order.
func appendOverrideMap(buf []byte, m map[[2]int]string) ([]byte, error) {
	if len(m) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: %d overrides", ErrValue, len(m))
	}
	tiles := make([][2]int, 0, len(m))
	for t := range m {
		tiles = append(tiles, t)
	}
	sort.Slice(tiles, func(i, j int) bool { return tileLess(tiles[i], tiles[j]) })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tiles)))
	var err error
	for _, t := range tiles {
		if buf, err = appendTile(buf, t); err != nil {
			return nil, err
		}
		if buf, err = appendStr16(buf, m[t]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func decodeOverrideMap(r *reader) (map[[2]int]string, error) {
	no, err := r.u32()
	if err != nil {
		return nil, err
	}
	const overrideMinBytes = 8 + 2
	if int64(no)*overrideMinBytes > int64(len(r.data)-r.off) {
		return nil, fmt.Errorf("%w: claims %d overrides in %d payload bytes", ErrOversized, no, len(r.data)-r.off)
	}
	m := make(map[[2]int]string, no)
	var prev [2]int
	for i := 0; i < int(no); i++ {
		t, err := r.tile()
		if err != nil {
			return nil, err
		}
		if i > 0 && !tileLess(prev, t) {
			return nil, fmt.Errorf("%w: overrides not in strict tile order (%v after %v)", ErrValue, t, prev)
		}
		prev = t
		id, err := r.str16()
		if err != nil {
			return nil, err
		}
		m[t] = id
	}
	return m, nil
}

func appendAssignment(buf []byte, a Assignment) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint64(buf, a.Epoch)
	var flags byte
	if a.Replicate {
		flags |= assignReplicate
	}
	buf = append(buf, flags)
	if len(a.Members) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: %d members", ErrValue, len(a.Members))
	}
	members := append([]string(nil), a.Members...)
	sort.Strings(members)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(members)))
	var err error
	for _, id := range members {
		if buf, err = appendStr16(buf, id); err != nil {
			return nil, err
		}
	}
	if buf, err = appendOverrideMap(buf, a.Overrides); err != nil {
		return nil, err
	}
	return appendOverrideMap(buf, a.FollowerOverrides)
}

func decodeAssignment(r *reader) (Assignment, error) {
	var a Assignment
	epoch, err := r.u64()
	if err != nil {
		return a, err
	}
	a.Epoch = epoch
	flags, err := r.u8()
	if err != nil {
		return a, err
	}
	if flags&^byte(assignFlagsMask) != 0 {
		return a, fmt.Errorf("%w: unknown assignment flags %#x", ErrValue, flags)
	}
	a.Replicate = flags&assignReplicate != 0
	nm, err := r.u16()
	if err != nil {
		return a, err
	}
	a.Members = make([]string, 0, nm)
	for i := 0; i < int(nm); i++ {
		id, err := r.str16()
		if err != nil {
			return a, err
		}
		if i > 0 && id <= a.Members[i-1] {
			return a, fmt.Errorf("%w: members not in strict order (%q after %q)", ErrValue, id, a.Members[i-1])
		}
		a.Members = append(a.Members, id)
	}
	if a.Overrides, err = decodeOverrideMap(r); err != nil {
		return a, err
	}
	if a.FollowerOverrides, err = decodeOverrideMap(r); err != nil {
		return a, err
	}
	return a, nil
}

func tileLess(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// --- frame encoders ---

// EncodeFrame renders one message as a wire frame. The message must be one
// of the typed structs above; requests and responses share the function.
func EncodeFrame(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case *Hello:
		buf := newFrame(kindHello, 8+len(m.NodeID))
		buf = binary.LittleEndian.AppendUint32(buf, m.Deadline)
		buf, err := appendStr16(buf, m.NodeID)
		if err != nil {
			return nil, err
		}
		return finishFrame(buf)
	case *Ack:
		buf := newFrame(kindAck, 16+len(m.Msg))
		buf = append(buf, m.Status)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf, err := appendStr16(buf, m.Msg)
		if err != nil {
			return nil, err
		}
		return finishFrame(buf)
	case *AddReq:
		return encodeAddLike(kindAdd, m)
	case *InstallReq:
		return encodeAddLike(kindInstall, (*AddReq)(m))
	case *ConfReq:
		buf := newFrame(kindConf, 64+len(m.Scan)*10)
		buf = binary.LittleEndian.AppendUint32(buf, m.Deadline)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf, err := appendTile(buf, m.Tile)
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Pos.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Pos.Y))
		if buf, err = appendFeatureConfig(buf, m.Cfg); err != nil {
			return nil, err
		}
		if buf, err = appendScan(buf, m.Scan); err != nil {
			return nil, err
		}
		return finishFrame(buf)
	case *ConfResp:
		buf := newFrame(kindConfResp, 32+len(m.Confs)*confMinBytes)
		buf = append(buf, m.Status)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf, err := appendStr16(buf, m.Msg)
		if err != nil {
			return nil, err
		}
		if buf, err = appendConfs(buf, m.Confs); err != nil {
			return nil, err
		}
		return finishFrame(buf)
	case *FreezeReq:
		return encodeTileReq(kindFreeze, (*TileReq)(m))
	case *FetchTileReq:
		return encodeTileReq(kindFetchTile, (*TileReq)(m))
	case *DropReq:
		return encodeTileReq(kindDrop, (*TileReq)(m))
	case *TileState:
		buf := newFrame(kindTileState, 32+len(m.Entries)*entryMinBytes)
		buf = append(buf, m.Status)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf, err := appendStr16(buf, m.Msg)
		if err != nil {
			return nil, err
		}
		if buf, err = appendEntries(buf, m.Entries); err != nil {
			return nil, err
		}
		return finishFrame(buf)
	case *AssignReq:
		buf := newFrame(kindAssign, 64)
		buf = binary.LittleEndian.AppendUint32(buf, m.Deadline)
		buf, err := appendAssignment(buf, m.Assign)
		if err != nil {
			return nil, err
		}
		return finishFrame(buf)
	case *SeqsReq:
		buf := newFrame(kindTileSeqs, 4)
		buf = binary.LittleEndian.AppendUint32(buf, m.Deadline)
		return finishFrame(buf)
	case *SeqsResp:
		buf := newFrame(kindSeqsResp, 32+len(m.Tiles)*16)
		buf = append(buf, m.Status)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf, err := appendStr16(buf, m.Msg)
		if err != nil {
			return nil, err
		}
		if len(m.Tiles) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: %d tile seqs", ErrValue, len(m.Tiles))
		}
		tiles := append([]TileSeq(nil), m.Tiles...)
		sort.Slice(tiles, func(i, j int) bool { return tileLess(tiles[i].Tile, tiles[j].Tile) })
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tiles)))
		for _, ts := range tiles {
			if buf, err = appendTile(buf, ts.Tile); err != nil {
				return nil, err
			}
			buf = binary.LittleEndian.AppendUint64(buf, ts.Seq)
		}
		return finishFrame(buf)
	case *StatsReq:
		buf := newFrame(kindStats, 4)
		buf = binary.LittleEndian.AppendUint32(buf, m.Deadline)
		return finishFrame(buf)
	case *StatsResp:
		buf := newFrame(kindStatsResp, 64)
		buf = append(buf, m.Status)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf, err := appendStr16(buf, m.Msg)
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, m.Tiles)
		buf = binary.LittleEndian.AppendUint64(buf, m.Entries)
		buf = binary.LittleEndian.AppendUint64(buf, m.WALFrames)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.WALBytes))
		buf = binary.LittleEndian.AppendUint64(buf, m.Generation)
		buf = binary.LittleEndian.AppendUint64(buf, m.ExpiredRejects)
		return finishFrame(buf)
	default:
		return nil, fmt.Errorf("%w: cannot encode %T", ErrKind, msg)
	}
}

// InstallReq is an AddReq delivered on the migration path: the node accepts
// it for tiles it does not (yet) own, which a plain add to a frozen or
// foreign tile would reject.
type InstallReq AddReq

// FreezeReq marks a tile read-only on its current owner.
type FreezeReq TileReq

// FetchTileReq reads a tile's entry log off its current owner.
type FetchTileReq TileReq

// DropReq removes a migrated-away tile from its previous owner.
type DropReq TileReq

func encodeAddLike(kind byte, m *AddReq) ([]byte, error) {
	buf := newFrame(kind, 16+len(m.Entries)*(entryMinBytes+32))
	buf = binary.LittleEndian.AppendUint32(buf, m.Deadline)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf, err := appendEntries(buf, m.Entries)
	if err != nil {
		return nil, err
	}
	return finishFrame(buf)
}

func encodeTileReq(kind byte, m *TileReq) ([]byte, error) {
	buf := newFrame(kind, 20)
	buf = binary.LittleEndian.AppendUint32(buf, m.Deadline)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf, err := appendTile(buf, m.Tile)
	if err != nil {
		return nil, err
	}
	return finishFrame(buf)
}

// --- frame decoder ---

// DecodeFrame parses one wire frame into its typed message.
func DecodeFrame(data []byte) (any, error) {
	kind, r, err := header(data)
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindHello:
		m := &Hello{}
		if m.Deadline, err = r.u32(); err != nil {
			return nil, err
		}
		if m.NodeID, err = r.str16(); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindAck:
		m := &Ack{}
		if m.Status, err = r.u8(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Msg, err = r.str16(); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindAdd, kindInstall:
		m := &AddReq{}
		if m.Deadline, err = r.u32(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Entries, err = decodeEntries(r); err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		if kind == kindInstall {
			return (*InstallReq)(m), nil
		}
		return m, nil
	case kindConf:
		m := &ConfReq{}
		if m.Deadline, err = r.u32(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Tile, err = r.tile(); err != nil {
			return nil, err
		}
		if m.Pos.X, err = r.f64(); err != nil {
			return nil, err
		}
		if m.Pos.Y, err = r.f64(); err != nil {
			return nil, err
		}
		if m.Cfg, err = decodeFeatureConfig(r); err != nil {
			return nil, err
		}
		if m.Scan, err = decodeScan(r); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindConfResp:
		m := &ConfResp{}
		if m.Status, err = r.u8(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Msg, err = r.str16(); err != nil {
			return nil, err
		}
		if m.Confs, err = decodeConfs(r); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindFreeze, kindFetchTile, kindDrop:
		m := &TileReq{}
		if m.Deadline, err = r.u32(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Tile, err = r.tile(); err != nil {
			return nil, err
		}
		if err := r.done(); err != nil {
			return nil, err
		}
		switch kind {
		case kindFreeze:
			return (*FreezeReq)(m), nil
		case kindFetchTile:
			return (*FetchTileReq)(m), nil
		default:
			return (*DropReq)(m), nil
		}
	case kindTileState:
		m := &TileState{}
		if m.Status, err = r.u8(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Msg, err = r.str16(); err != nil {
			return nil, err
		}
		if m.Entries, err = decodeEntries(r); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindAssign:
		m := &AssignReq{}
		if m.Deadline, err = r.u32(); err != nil {
			return nil, err
		}
		if m.Assign, err = decodeAssignment(r); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindTileSeqs:
		m := &SeqsReq{}
		if m.Deadline, err = r.u32(); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindSeqsResp:
		m := &SeqsResp{}
		if m.Status, err = r.u8(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Msg, err = r.str16(); err != nil {
			return nil, err
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		const tileSeqBytes = 8 + 8
		if int64(n)*tileSeqBytes > int64(len(r.data)-r.off) {
			return nil, fmt.Errorf("%w: claims %d tile seqs in %d payload bytes", ErrOversized, n, len(r.data)-r.off)
		}
		m.Tiles = make([]TileSeq, n)
		var prev [2]int
		for i := range m.Tiles {
			if m.Tiles[i].Tile, err = r.tile(); err != nil {
				return nil, err
			}
			if i > 0 && !tileLess(prev, m.Tiles[i].Tile) {
				return nil, fmt.Errorf("%w: tile seqs not in strict tile order", ErrValue)
			}
			prev = m.Tiles[i].Tile
			if m.Tiles[i].Seq, err = r.u64(); err != nil {
				return nil, err
			}
		}
		return m, r.done()
	case kindStats:
		m := &StatsReq{}
		if m.Deadline, err = r.u32(); err != nil {
			return nil, err
		}
		return m, r.done()
	case kindStatsResp:
		m := &StatsResp{}
		if m.Status, err = r.u8(); err != nil {
			return nil, err
		}
		if m.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Msg, err = r.str16(); err != nil {
			return nil, err
		}
		if m.Tiles, err = r.u32(); err != nil {
			return nil, err
		}
		if m.Entries, err = r.u64(); err != nil {
			return nil, err
		}
		if m.WALFrames, err = r.u64(); err != nil {
			return nil, err
		}
		wb, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.WALBytes = int64(wb)
		if m.Generation, err = r.u64(); err != nil {
			return nil, err
		}
		if m.ExpiredRejects, err = r.u64(); err != nil {
			return nil, err
		}
		return m, r.done()
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrKind, kind)
	}
}
