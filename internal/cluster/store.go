// The coordinator store: the cluster's rssimap.Backend. It owns the
// canonical record log (the single global insertion order every per-tile
// replica is a restriction of), the tile→node assignment, and one client
// per node. Ingestion fans each record out to its owner tile plus halo
// neighbors — exactly shardstore's replication geometry, so a confidence
// query routes to one tile on one node and returns bits identical to the
// single-process sharded store. Node failures are never fatal to acked
// data: the canonical log is the source of truth, and Resync replays any
// tail a node lost, gated by per-tile sequence numbers.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trajforge/internal/fsx"
	"trajforge/internal/geo"
	"trajforge/internal/parallel"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/wal"
	"trajforge/internal/wifi"
)

// Options configures a coordinator store.
type Options struct {
	// Shard is the tile geometry, shared bit-for-bit with shardstore.
	Shard shardstore.Config
	// Nodes maps member id → shard-transport address.
	Nodes map[string]string
	// CallTimeout bounds RPCs that carry no request deadline.
	CallTimeout time.Duration
	// Replicate turns on primary+follower tile placement: ingest batches
	// dual-write to both replicas and reads fail over to the follower
	// when the primary is unreachable.
	Replicate bool
	// Dir is the coordinator's durability directory: the canonical record
	// log and every assignment epoch spill to a WAL + snapshot lineage
	// there, so a coordinator restart recovers from disk instead of
	// needing the seed corpus re-fed. Empty runs memory-only.
	Dir string
	// FS is the filesystem seam for Dir; nil means the real one.
	FS fsx.FS
	// SyncInterval is the coordinator WAL's group-commit interval; zero
	// fsyncs inline on every append.
	SyncInterval time.Duration
	// Retry overrides the transient-transport-error retry policy for
	// coordinator→node RPCs; nil uses defaultShardRetry. A MaxAttempts<=1
	// policy disables retries (what the chaos explorers use to keep
	// crash-point runs fast and deterministic).
	Retry *resilience.RetryPolicy
}

const defaultCallTimeout = 10 * time.Second

// defaultShardRetry keeps a node bounce invisible without stalling the
// query path for seconds: up to 3 tries with 25–250ms decorrelated jitter
// and at most one second of sleeping per call.
func defaultShardRetry() resilience.RetryPolicy {
	return resilience.RetryPolicy{MaxAttempts: 3, Base: 25 * time.Millisecond, Max: 250 * time.Millisecond, Budget: time.Second}
}

// addChunk bounds entries per ingest/install frame, so a migration crash
// leaves a clean prefix and retries stay idempotent via the seq gate.
const addChunk = 128

// migration is one in-flight tile handoff.
type migration struct {
	to string
	// buffer holds entries for the migrating tile that arrived after the
	// freeze; they flush to the winning owner at the post-migration epoch.
	buffer []Entry
}

// Store is the coordinator: a distributed rssimap.Backend.
type Store struct {
	cfg  shardstore.Config
	opts Options
	fs   fsx.FS

	mu        sync.RWMutex
	log       []rssimap.Record
	tileIndex map[[2]int][]int // tile → canonical log indices (halo included)
	assign    Assignment
	migrating map[[2]int]*migration
	nodes     map[string]*nodeClient
	wlog      *wal.Log // canonical-log + assignment journal (nil = memory-only)
	walErr    error    // first fatal journal failure; Add fails closed after

	forwards     atomic.Uint64 // confidence RPCs sent to nodes
	halo         atomic.Uint64 // halo (non-owner-tile) entries fanned out
	localHits    atomic.Uint64 // empty-tile queries answered locally
	migrations   atomic.Uint64 // committed migrations
	aborted      atomic.Uint64 // aborted migrations
	resyncs      atomic.Uint64 // completed node resyncs
	replicaReads atomic.Uint64 // queries answered by a follower replica
	retried      atomic.Uint64 // retried node RPC transport attempts
	repairs      atomic.Uint64 // completed re-replications (dead-node repairs)
	rebalances   atomic.Uint64 // completed automatic rebalances
	expired      atomic.Uint64 // forwards refused because the deadline had expired
	repairing    atomic.Bool   // a re-replication is in flight
}

var _ rssimap.Backend = (*Store)(nil)
var _ rssimap.ContextBackend = (*Store)(nil)

// NewStore connects a coordinator to its nodes and installs the first
// assignment. Nodes that are unreachable start unsynced and heal through
// Resync; an epoch above every node's journaled epoch — and above the
// coordinator's own journaled epoch, when durable — fences off any
// previous coordinator incarnation.
//
// With Options.Dir, the canonical record log and the assignment recover
// from the coordinator's own WAL/snapshot lineage, and every reachable
// node is resynced from the recovered log at startup: restart needs zero
// seed-corpus replay.
func NewStore(opts Options) (*Store, error) {
	if err := opts.Shard.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = defaultCallTimeout
	}
	retry := defaultShardRetry()
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	members := make([]string, 0, len(opts.Nodes))
	for id := range opts.Nodes {
		members = append(members, id)
	}
	assign, err := NewAssignment(members)
	if err != nil {
		return nil, err
	}
	assign.Replicate = opts.Replicate && len(members) > 1
	s := &Store{
		cfg:       opts.Shard,
		opts:      opts,
		tileIndex: make(map[[2]int][]int),
		migrating: make(map[[2]int]*migration),
		nodes:     make(map[string]*nodeClient, len(opts.Nodes)),
	}
	for id, addr := range opts.Nodes {
		s.nodes[id] = &nodeClient{id: id, addr: addr, timeout: opts.CallTimeout, retry: retry, retried: &s.retried}
	}

	// Durable coordinators recover the canonical log and the last
	// journaled assignment (epoch, overrides, follower placements) from
	// their own WAL lineage before talking to any node.
	recoveredAssign, err := s.openDurability()
	if err != nil {
		return nil, err
	}
	if recoveredAssign != nil {
		assign = s.reconcileAssignment(assign, *recoveredAssign)
	}

	// Probe every node: the new epoch must exceed whatever any node
	// journaled under a previous coordinator — and whatever this
	// coordinator's own WAL journaled before it last stopped.
	maxEpoch := assign.Epoch - 1
	if recoveredAssign != nil && recoveredAssign.Epoch > maxEpoch {
		maxEpoch = recoveredAssign.Epoch
	}
	for _, nc := range s.sortedNodes() {
		ack, err := nc.call(&Hello{NodeID: nc.id}, time.Time{})
		if err != nil {
			nc.markUnsynced(err)
			continue
		}
		if a, ok := ack.(*Ack); ok && a.Epoch > maxEpoch {
			maxEpoch = a.Epoch
		}
	}
	assign.Epoch = maxEpoch + 1
	s.mu.Lock()
	s.assign = assign
	s.journalAssignLocked(assign)
	s.mu.Unlock()
	s.pushAssignment()

	// A recovered log is the source of truth: replay every node's missing
	// tail from it now, so the cluster serves the acked world without the
	// operator re-feeding anything. Failures leave the node unsynced — the
	// query path and the repair loop heal it later.
	if s.wlog != nil && s.Len() > 0 {
		for _, nc := range s.sortedNodes() {
			if err := s.Resync(nc.id); err != nil {
				nc.markUnsynced(err)
			}
		}
	}
	return s, nil
}

// reconcileAssignment merges a journaled assignment into the fresh one
// built from the configured member set: overrides survive only while
// their target is still a member, and the journaled epoch becomes the
// fencing floor.
func (s *Store) reconcileAssignment(fresh, recovered Assignment) Assignment {
	out := fresh
	out.Epoch = recovered.Epoch
	for t, id := range recovered.Overrides {
		if out.hasMember(id) {
			out.Overrides[t] = id
		}
	}
	for t, id := range recovered.FollowerOverrides {
		if out.hasMember(id) {
			if out.FollowerOverrides == nil {
				out.FollowerOverrides = make(map[[2]int]string)
			}
			out.FollowerOverrides[t] = id
		}
	}
	return out
}

// sortedNodes returns the node clients in id order (deterministic fan-out).
func (s *Store) sortedNodes() []*nodeClient {
	ids := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*nodeClient, len(ids))
	for i, id := range ids {
		out[i] = s.nodes[id]
	}
	return out
}

// pushAssignment best-effort pushes the current assignment to every node;
// nodes that miss it heal on the next wrongEpoch retry or Resync.
func (s *Store) pushAssignment() {
	s.mu.RLock()
	assign := s.assign.Clone()
	s.mu.RUnlock()
	for _, nc := range s.sortedNodes() {
		if err := nc.pushAssign(assign); err != nil {
			nc.markUnsynced(err)
		}
	}
}

// Close drops every node connection and closes the coordinator WAL. Node
// processes keep running.
func (s *Store) Close() error {
	for _, nc := range s.nodes {
		nc.close()
	}
	if s.wlog != nil {
		return s.wlog.Close()
	}
	return nil
}

// Config returns the shared tile geometry.
func (s *Store) Config() shardstore.Config { return s.cfg }

func cloneRecord(rec rssimap.Record) rssimap.Record {
	m := make(map[string]int, len(rec.RSSI))
	for mac, v := range rec.RSSI {
		m[mac] = v
	}
	return rssimap.Record{Pos: rec.Pos, RSSI: m, Contributor: rec.Contributor}
}

// Add appends records to the canonical log and fans each out to the nodes
// holding its tiles (owner + halo; with replication on, the follower gets
// the same entries — a dual-write with identical seqs, so either replica
// serves bit-identical answers). Sequence numbers are the canonical log
// positions, assigned under the lock together with the per-node outbox
// order — so every node sees every tile's entries in canonical order, and
// the per-tile replica a node builds is bit-identical to the shard the
// single-process store would build. With durability on, the batch is
// journaled to the coordinator WAL before any node sees it (a journal
// failure fails the ingest closed — nothing is acked the coordinator's own
// log did not capture). Wire errors mark the node unsynced (the canonical
// log replays the tail later); Add itself never loses data.
func (s *Store) Add(records []rssimap.Record) {
	if len(records) == 0 {
		return
	}
	recs := make([]rssimap.Record, len(records))
	for i, in := range records {
		recs[i] = cloneRecord(in)
	}
	s.mu.Lock()
	if err := s.journalRecordsLocked(recs); err != nil {
		s.mu.Unlock()
		return
	}
	var tiles [][2]int
	perNode := make(map[string][]Entry)
	for _, rec := range recs {
		idx := len(s.log)
		s.log = append(s.log, rec)
		seq := uint64(idx) + 1
		tiles = s.cfg.TilesFor(rec.Pos, tiles)
		for ti, t := range tiles {
			s.tileIndex[t] = append(s.tileIndex[t], idx)
			if ti > 0 {
				s.halo.Add(1)
			}
			e := Entry{Tile: t, Seq: seq, Rec: rec}
			if mig := s.migrating[t]; mig != nil {
				mig.buffer = append(mig.buffer, e)
				continue
			}
			owner := s.assign.Owner(t)
			perNode[owner] = append(perNode[owner], e)
			if f := s.assign.Follower(t); f != "" && f != owner {
				perNode[f] = append(perNode[f], e)
			}
		}
	}
	epoch := s.assign.Epoch
	ids := make([]string, 0, len(perNode))
	for id := range perNode {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	targets := make([]*nodeClient, 0, len(ids))
	for _, id := range ids {
		nc := s.nodes[id]
		// Enqueue under s.mu: outbox order == canonical order.
		nc.enqueue(&AddReq{Epoch: epoch, Entries: perNode[id]})
		targets = append(targets, nc)
	}
	s.mu.Unlock()

	for _, nc := range targets {
		if err := nc.flush(s); err != nil {
			nc.markUnsynced(err)
		}
	}
}

// AddUploads ingests every point of the given uploads that carries a scan.
func (s *Store) AddUploads(uploads []*wifi.Upload) {
	s.Add(rssimap.UploadRecords(uploads))
}

// Len returns the number of canonical records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// Records returns every canonical record in insertion order (fresh copies).
func (s *Store) Records() []rssimap.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]rssimap.Record, len(s.log))
	for i, rec := range s.log {
		out[i] = cloneRecord(rec)
	}
	return out
}

// ErrExpired reports a shard request refused because its deadline had
// already passed — at the coordinator before dispatch, or at the node on
// arrival. A typed refusal, never a partial answer: callers treat it the
// way they treat context.DeadlineExceeded.
var ErrExpired = errors.New("cluster: deadline expired before dispatch")

// queryTarget resolves the nodes answering for position o — the tile's
// primary and (with replication on) its follower — or reports that the
// owning tile is empty (answerable locally, bit-identical to a node
// holding no records for it).
func (s *Store) queryTarget(o geo.Point) (tile [2]int, primary, follower *nodeClient, epoch uint64, empty bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tile = s.cfg.TileOf(o)
	if len(s.tileIndex[tile]) == 0 {
		return tile, nil, nil, s.assign.Epoch, true
	}
	owner := s.assign.Owner(tile)
	primary = s.nodes[owner]
	// A migrating tile has no settled follower replica: reads stay on the
	// primary until commit.
	if s.migrating[tile] == nil {
		if f := s.assign.Follower(tile); f != "" && f != owner {
			follower = s.nodes[f]
		}
	}
	return tile, primary, follower, s.assign.Epoch, false
}

// forwardConfs runs one point-confidence query against the node owning the
// tile, failing over to the follower replica when the primary is
// unreachable (both replicas apply the same entries under the same seqs,
// so either answer is bit-identical), retrying across epoch bumps (a
// migration can commit between resolving the owner and the node
// answering), and healing unsynced nodes first. A request whose deadline
// already passed is refused with ErrExpired before any node sees it.
func (s *Store) forwardConfs(ctx context.Context, o geo.Point, scan wifi.Scan, cfg rssimap.FeatureConfig) ([]rssimap.PointConfidence, error) {
	var deadline time.Time
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.expired.Add(1)
			return nil, fmt.Errorf("%w: %v", ErrExpired, err)
		}
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
	}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		tile, primary, follower, epoch, empty := s.queryTarget(o)
		if empty {
			s.localHits.Add(1)
			return shardstore.EmptyConfidences(nil, scan, cfg), nil
		}
		if primary == nil {
			return nil, fmt.Errorf("cluster: tile %v has no owner", tile)
		}
		// Primary first; the follower is the fallback. When the primary is
		// already known-bad and the follower is healthy, skip straight to
		// the follower rather than stalling the query on a resync attempt.
		order := []*nodeClient{primary}
		if follower != nil {
			if primary.isUnsynced() && !follower.isUnsynced() {
				order = []*nodeClient{follower, primary}
			} else {
				order = append(order, follower)
			}
		}
		retarget := false
		for _, nc := range order {
			if nc.isUnsynced() {
				if err := s.Resync(nc.id); err != nil {
					lastErr = err
					continue
				}
			}
			s.forwards.Add(1)
			resp, err := nc.call(&ConfReq{
				Deadline: deadlineMs(deadline, time.Now()),
				Epoch:    epoch,
				Tile:     tile,
				Pos:      o,
				Cfg:      cfg,
				Scan:     scan,
			}, deadline)
			if err != nil {
				nc.markUnsynced(err)
				lastErr = err
				continue
			}
			cr, ok := resp.(*ConfResp)
			if !ok {
				return nil, fmt.Errorf("%w: %T to a confidence query", ErrKind, resp)
			}
			switch cr.Status {
			case statusOK:
				if nc != primary {
					s.replicaReads.Add(1)
				}
				return cr.Confs, nil
			case statusExpired:
				s.expired.Add(1)
				return nil, fmt.Errorf("%w: node %s: %s", ErrExpired, nc.id, cr.Msg)
			case statusWrongEpoch, statusNotOwner:
				// The assignment moved under us (or the node is behind).
				// Re-push and re-resolve.
				s.pushAssignment()
				lastErr = fmt.Errorf("cluster: node %s fenced query (status %d, node epoch %d)", nc.id, cr.Status, cr.Epoch)
				retarget = true
			default:
				// statusFailed (dead storage) and the like: the replica may
				// still answer.
				lastErr = fmt.Errorf("cluster: node %s query failed: %s", nc.id, cr.Msg)
			}
			if retarget {
				break
			}
		}
	}
	return nil, fmt.Errorf("cluster: confidence query exhausted retries: %w", lastErr)
}

// ConfidenceTol evaluates Eq. 7 for one reported (mac, rssi) at o on the
// node owning o's tile. A single-observation TopK-1 confidence query runs
// the identical kernel (same θ1/θ2 weights, same accumulation order), so
// the forwarded answer is bit-identical to the local store's.
func (s *Store) ConfidenceTol(o geo.Point, mac string, rssi int, r float64, tol rssimap.Tolerance) (phi float64, num int) {
	confs, err := s.forwardConfs(context.Background(), o, wifi.Scan{{MAC: mac, RSSI: rssi}},
		rssimap.FeatureConfig{R: r, TopK: 1, Tol: tol})
	if err != nil || len(confs) == 0 {
		return 0, 0
	}
	return confs[0].Phi, confs[0].Num
}

// Confidence evaluates Eq. 7 with exact RPD matching.
func (s *Store) Confidence(o geo.Point, mac string, rssi int, r float64) (phi float64, num int) {
	return s.ConfidenceTol(o, mac, rssi, r, 0)
}

// PointConfidences verifies the TopK strongest observations of one scan
// against the node owning o's tile.
func (s *Store) PointConfidences(o geo.Point, scan wifi.Scan, cfg rssimap.FeatureConfig) []rssimap.PointConfidence {
	confs, err := s.forwardConfs(context.Background(), o, scan, cfg)
	if err != nil {
		return shardstore.EmptyConfidences(nil, scan, cfg)
	}
	return confs
}

// PointConfidencesInto is PointConfidences appending into dst[:0].
func (s *Store) PointConfidencesInto(dst []rssimap.PointConfidence, o geo.Point, scan wifi.Scan, cfg rssimap.FeatureConfig) []rssimap.PointConfidence {
	return append(dst[:0], s.PointConfidences(o, scan, cfg)...)
}

// checkFeatureRadius rejects feature configs the tile geometry cannot
// answer exactly — the same bound shardstore enforces.
func (s *Store) checkFeatureRadius(cfg rssimap.FeatureConfig) error {
	if cfg.R > s.cfg.MaxQueryRadius {
		return fmt.Errorf("cluster: feature radius %g exceeds MaxQueryRadius %g", cfg.R, s.cfg.MaxQueryRadius)
	}
	return nil
}

// Features computes the Eq. 8 feature vector of an upload, forwarding each
// point's confidence query to the node owning it. Aggregation runs through
// rssimap.FeaturesFrom, so the vector is bit-identical to the local
// backends'.
func (s *Store) Features(u *wifi.Upload, cfg rssimap.FeatureConfig) ([]float64, error) {
	return s.FeaturesContext(context.Background(), u, cfg)
}

// FeaturesContext is Features carrying the originating request's context:
// its deadline rides every forwarded RPC (the wire's remaining-time field
// and the conn deadlines), so admission control accounts remote time and a
// shed request stops consuming node capacity.
func (s *Store) FeaturesContext(ctx context.Context, u *wifi.Upload, cfg rssimap.FeatureConfig) ([]float64, error) {
	if err := s.checkFeatureRadius(cfg); err != nil {
		return nil, err
	}
	var rpcErr error
	feat, err := rssimap.FeaturesFrom(u, cfg, func(_ int, pos geo.Point, scan wifi.Scan) []rssimap.PointConfidence {
		if rpcErr != nil {
			return shardstore.EmptyConfidences(nil, scan, cfg)
		}
		confs, err := s.forwardConfs(ctx, pos, scan, cfg)
		if err != nil {
			rpcErr = err
			return shardstore.EmptyConfidences(nil, scan, cfg)
		}
		return confs
	})
	if rpcErr != nil {
		return nil, rpcErr
	}
	return feat, err
}

// FeaturesBatch extracts the feature vectors of many uploads across the
// worker pool; each upload's queries fan out to whichever nodes own its
// tiles. Results are ordered by upload index and bit-identical to Features
// run serially.
func (s *Store) FeaturesBatch(uploads []*wifi.Upload, cfg rssimap.FeatureConfig) ([][]float64, error) {
	for i, u := range uploads {
		if err := u.Validate(); err != nil {
			return nil, fmt.Errorf("upload %d: rssimap: %w", i, err)
		}
	}
	if err := s.checkFeatureRadius(cfg); err != nil {
		return nil, err
	}
	out := make([][]float64, len(uploads))
	var firstErr error
	var errOnce sync.Once
	parallel.ForEachChunk(len(uploads), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			feat, err := s.Features(uploads[i], cfg)
			if err != nil {
				errOnce.Do(func() { firstErr = fmt.Errorf("upload %d: %w", i, err) })
				return
			}
			out[i] = feat
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Resync replays onto one node everything the canonical log says it should
// hold — the tiles it owns plus, with replication on, the tiles it follows:
// push the current assignment, read the node's per-tile sequence high-water
// marks, send every missing tail entry, and drop tiles the node no longer
// holds a replica of. Idempotent (the seq gate skips what the node kept),
// and the reason a node crash is never data loss.
func (s *Store) Resync(id string) error {
	nc := s.nodes[id]
	if nc == nil {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	nc.sendMu.Lock()
	defer nc.sendMu.Unlock()

	s.mu.RLock()
	assign := s.assign.Clone()
	owned := make(map[[2]int][]int)
	for t, idxs := range s.tileIndex {
		if len(idxs) > 0 && assign.replicaOf(t, id) && s.migrating[t] == nil {
			owned[t] = idxs
		}
	}
	logRef := s.log
	s.mu.RUnlock()

	if err := nc.pushAssignLocked(assign); err != nil {
		return err
	}
	resp, err := nc.callLocked(&SeqsReq{}, time.Time{})
	if err != nil {
		return err
	}
	sr, ok := resp.(*SeqsResp)
	if !ok || sr.Status != statusOK {
		return fmt.Errorf("cluster: node %s seqs read failed", id)
	}
	nodeSeq := make(map[[2]int]uint64, len(sr.Tiles))
	for _, ts := range sr.Tiles {
		nodeSeq[ts.Tile] = ts.Seq
	}

	// Replay missing tails, chunked, in canonical order per tile.
	var batch []Entry
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		req := &AddReq{Epoch: assign.Epoch, Entries: batch}
		ack, err := nc.ackCallLocked(req)
		if err != nil {
			return err
		}
		if ack.Status != statusOK {
			return fmt.Errorf("cluster: resync add to %s: status %d %s", id, ack.Status, ack.Msg)
		}
		batch = batch[:0]
		return nil
	}
	tiles := make([][2]int, 0, len(owned))
	for t := range owned {
		tiles = append(tiles, t)
	}
	sort.Slice(tiles, func(i, j int) bool { return tileLess(tiles[i], tiles[j]) })
	for _, t := range tiles {
		have := nodeSeq[t]
		for _, idx := range owned[t] {
			seq := uint64(idx) + 1
			if seq <= have {
				continue
			}
			batch = append(batch, Entry{Tile: t, Seq: seq, Rec: logRef[idx]})
			if len(batch) >= addChunk {
				if err := flushBatch(); err != nil {
					return err
				}
			}
		}
	}
	if err := flushBatch(); err != nil {
		return err
	}

	// Drop tiles the node reported but no longer owns.
	for _, ts := range sr.Tiles {
		if _, ok := owned[ts.Tile]; ok {
			continue
		}
		ack, err := nc.ackCallLocked(&DropReq{Epoch: assign.Epoch, Tile: ts.Tile})
		if err != nil {
			return err
		}
		if ack.Status != statusOK && ack.Status != statusWrongEpoch {
			return fmt.Errorf("cluster: resync drop %v on %s: status %d %s", ts.Tile, id, ack.Status, ack.Msg)
		}
	}

	// Only declare the node healthy if the world didn't move mid-resync.
	s.mu.RLock()
	current := s.assign.Epoch
	s.mu.RUnlock()
	if current != assign.Epoch {
		return fmt.Errorf("cluster: epoch moved during resync of %s", id)
	}
	nc.clearUnsynced()
	s.resyncs.Add(1)
	return nil
}

// NodeStats is one node's view in the coordinator's stats.
type NodeStats struct {
	ID string `json:"id"`
	// Tiles is the number of non-empty tiles the assignment maps here as
	// primary.
	Tiles int `json:"tiles"`
	// FollowerTiles is the number of non-empty tiles this node follows
	// (second replica); zero with replication off.
	FollowerTiles int `json:"follower_tiles,omitempty"`
	// Entries is the number of (tile, record) replicas assigned here as
	// primary.
	Entries  int  `json:"entries"`
	Unsynced bool `json:"unsynced,omitempty"`
}

// StoreStats summarises cluster state for /v1/stats.
type StoreStats struct {
	Epoch             uint64      `json:"epoch"`
	Records           int         `json:"records"`
	Nodes             []NodeStats `json:"nodes"`
	Forwarded         uint64      `json:"forwarded_requests"`
	HaloUpdates       uint64      `json:"halo_updates"`
	LocalEmptyAnswers uint64      `json:"local_empty_answers"`
	Migrations        uint64      `json:"migrations"`
	AbortedMigrations uint64      `json:"aborted_migrations"`
	Resyncs           uint64      `json:"resyncs"`
	MigrationInFlight bool        `json:"migration_in_flight"`
	Replicated        bool        `json:"replicated,omitempty"`
	ReplicaReads      uint64      `json:"replica_reads,omitempty"`
	RetriedCalls      uint64      `json:"retried_calls,omitempty"`
	Repairs           uint64      `json:"repairs,omitempty"`
	Rebalances        uint64      `json:"rebalances,omitempty"`
	ExpiredRejects    uint64      `json:"expired_rejects,omitempty"`
	Degraded          bool        `json:"degraded,omitempty"`
	DegradedReason    string      `json:"degraded_reason,omitempty"`
	WALFrames         uint64      `json:"wal_frames,omitempty"`
	WALBytes          uint64      `json:"wal_bytes,omitempty"`
	Generation        uint64      `json:"wal_generation,omitempty"`
}

// Stats returns a snapshot of cluster state from the coordinator's view —
// no node RPCs, so it is safe on the serving path.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	st := StoreStats{
		Epoch:             s.assign.Epoch,
		Records:           len(s.log),
		MigrationInFlight: len(s.migrating) > 0,
		Replicated:        s.assign.Replicate,
	}
	perNode := make(map[string]*NodeStats, len(s.nodes))
	for _, id := range s.assign.Members {
		perNode[id] = &NodeStats{ID: id}
	}
	for t, idxs := range s.tileIndex {
		if len(idxs) == 0 {
			continue
		}
		owner := s.assign.Owner(t)
		if ns := perNode[owner]; ns != nil {
			ns.Tiles++
			ns.Entries += len(idxs)
		}
		if f := s.assign.Follower(t); f != "" && f != owner {
			if ns := perNode[f]; ns != nil {
				ns.FollowerTiles++
			}
		}
	}
	if s.wlog != nil {
		frames, bytes := s.wlog.Stats()
		st.WALFrames, st.WALBytes = frames, uint64(bytes)
		st.Generation = s.wlog.Generation()
	}
	s.mu.RUnlock()
	ids := make([]string, 0, len(perNode))
	for id := range perNode {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ns := perNode[id]
		if nc := s.nodes[id]; nc != nil {
			ns.Unsynced = nc.isUnsynced()
		}
		st.Nodes = append(st.Nodes, *ns)
	}
	st.Forwarded = s.forwards.Load()
	st.HaloUpdates = s.halo.Load()
	st.LocalEmptyAnswers = s.localHits.Load()
	st.Migrations = s.migrations.Load()
	st.AbortedMigrations = s.aborted.Load()
	st.Resyncs = s.resyncs.Load()
	st.ReplicaReads = s.replicaReads.Load()
	st.RetriedCalls = s.retried.Load()
	st.Repairs = s.repairs.Load()
	st.Rebalances = s.rebalances.Load()
	st.ExpiredRejects = s.expired.Load()
	st.Degraded, st.DegradedReason = s.HealthStatus()
	return st
}

// HealthStatus reports whether the cluster is degraded — still serving,
// but with reduced redundancy or durability — and why: the coordinator's
// own journal failed, a migration or repair is mid-flight, or some
// non-empty tile currently has no synced replica at all.
func (s *Store) HealthStatus() (degraded bool, reason string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.walErr != nil {
		return true, s.walErr.Error()
	}
	if s.repairing.Load() {
		return true, "re-replication in flight"
	}
	if len(s.migrating) > 0 {
		return true, "migration in flight"
	}
	for t, idxs := range s.tileIndex {
		if len(idxs) == 0 {
			continue
		}
		owner := s.assign.Owner(t)
		live := false
		if nc := s.nodes[owner]; nc != nil && !nc.isUnsynced() {
			live = true
		}
		if !live {
			if f := s.assign.Follower(t); f != "" && f != owner {
				if nc := s.nodes[f]; nc != nil && !nc.isUnsynced() {
					live = true
				}
			}
		}
		if !live {
			return true, fmt.Sprintf("tile %v has no live replica", t)
		}
	}
	return false, ""
}

// Assignment returns the current assignment (a copy).
func (s *Store) Assignment() Assignment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.assign.Clone()
}

// BusiestTile returns the non-empty tile with the most replicas — the
// rebalance candidate loadgen migrates mid-run.
func (s *Store) BusiestTile() ([2]int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best [2]int
	bestN := 0
	for t, idxs := range s.tileIndex {
		if len(idxs) > bestN || (len(idxs) == bestN && bestN > 0 && tileLess(t, best)) {
			best, bestN = t, len(idxs)
		}
	}
	return best, bestN > 0
}
