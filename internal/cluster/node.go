// A shard node: one member of the cluster, owning the tiles the assignment
// maps to it. Each node keeps an independent rssimap.Store per tile plus
// the tile's applied entry log, journals every mutation to its own
// internal/wal lineage (WAL + snapshot, generation-reconciled exactly like
// the server's persistence), and serves the shard-transport RPC over TCP.
//
// Fencing: the node journals the assignment epoch it last accepted, and
// every tile-addressed request carries the sender's epoch. Queries demand
// exact epoch equality *and* that the assignment maps the tile to this
// node; mutations demand exact equality too, so a coordinator holding a
// stale map — or a node that missed an epoch bump — gets statusWrongEpoch
// (with the node's epoch) instead of silently acting on the wrong side of
// a migration. Epochs only move forward: an assignment push with a lower
// epoch is rejected, which is what makes split-brain tile ownership
// impossible even across node restarts.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"trajforge/internal/fsx"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/wal"
)

// Node WAL frame types.
const (
	nodeFrameEntries byte = 1 // one applied entry batch (codec entry list)
	nodeFrameDrop    byte = 2 // one dropped tile (codec tile)
	nodeFrameAssign  byte = 3 // one accepted assignment (codec assignment)
)

const (
	nodeWALName  = "node.wal"
	nodeSnapName = "node.snap"

	// transportIdle bounds reads/writes that carry no request deadline.
	transportIdle = 30 * time.Second
)

// NodeOptions configures a shard node.
type NodeOptions struct {
	// Dir is the node's durability directory; empty runs memory-only
	// (no WAL, no snapshot — tests and throwaway nodes).
	Dir string
	// FS is the filesystem seam; nil means the real one.
	FS fsx.FS
	// SyncInterval is the node WAL's group-commit interval; zero fsyncs
	// inline on every append (the chaos explorer's deterministic mode).
	SyncInterval time.Duration
}

// tileState is one tile's replica on this node.
type tileState struct {
	store   *rssimap.Store
	lastSeq uint64
	entries []Entry // applied entries in order, for handoff and snapshots
}

// Node is one cluster member.
type Node struct {
	id   string
	cfg  shardstore.Config
	opts NodeOptions
	fs   fsx.FS

	mu     sync.RWMutex
	epoch  uint64
	assign Assignment
	tiles  map[[2]int]*tileState
	frozen map[[2]int]bool
	log    *wal.Log
	dead   error // first fatal storage failure; the node refuses everything after

	connMu sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	statMu   sync.Mutex
	adds     uint64
	confs    uint64
	installs uint64
	expired  uint64
}

// NewNode opens (or recovers) a shard node. With a Dir, state is loaded
// snapshot-first then WAL-replayed, reconciling generations the same way
// server persistence does.
func NewNode(id string, cfg shardstore.Config, opts NodeOptions) (*Node, error) {
	if id == "" {
		return nil, errors.New("cluster: node id must be non-empty")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := rssimap.NewStore(cfg.Store, nil); err != nil {
		return nil, err
	}
	fs := opts.FS
	if fs == nil {
		fs = fsx.OS
	}
	n := &Node{
		id:     id,
		cfg:    cfg,
		opts:   opts,
		fs:     fs,
		tiles:  make(map[[2]int]*tileState),
		frozen: make(map[[2]int]bool),
		conns:  make(map[net.Conn]struct{}),
	}
	if opts.Dir == "" {
		return n, nil
	}
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: node dir: %w", err)
	}
	log, err := wal.Open(filepath.Join(opts.Dir, nodeWALName), wal.Options{SyncInterval: opts.SyncInterval, FS: fs})
	if err != nil {
		return nil, err
	}
	n.log = log
	if err := n.load(); err != nil {
		log.Close()
		return nil, err
	}
	return n, nil
}

// ID returns the node's member id.
func (n *Node) ID() string { return n.id }

// Epoch returns the last assignment epoch the node accepted (and, when
// durable, journaled) — the value fencing compares against.
func (n *Node) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.epoch
}

// snapPath returns the snapshot path (only valid with a Dir).
func (n *Node) snapPath() string { return filepath.Join(n.opts.Dir, nodeSnapName) }

// load reconciles snapshot and WAL generations and replays the log.
func (n *Node) load() error {
	snapGen, payload, err := wal.ReadSnapshotFS(n.fs, n.snapPath())
	switch {
	case errors.Is(err, wal.ErrNoSnapshot):
		snapGen = 0
	case err != nil:
		return err
	default:
		if err := n.loadSnapshot(payload); err != nil {
			return fmt.Errorf("%w: node snapshot: %v", wal.ErrCorrupt, err)
		}
	}
	walGen := n.log.Generation()
	switch {
	case snapGen > walGen:
		// Crash between snapshot rename and log reset: the snapshot already
		// covers every frame of the stale log.
		return n.log.Reset(snapGen)
	case snapGen < walGen && walGen > 1:
		return fmt.Errorf("%w: node snapshot generation %d behind log generation %d in %s",
			wal.ErrCorrupt, snapGen, walGen, n.opts.Dir)
	default:
		return n.log.Replay(func(typ byte, payload []byte) error {
			return n.replayFrame(typ, payload)
		})
	}
}

func (n *Node) replayFrame(typ byte, payload []byte) error {
	r := &reader{data: payload}
	switch typ {
	case nodeFrameEntries:
		entries, err := decodeEntries(r)
		if err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		if err := r.done(); err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		n.applyEntriesLocked(entries)
		return nil
	case nodeFrameDrop:
		t, err := r.tile()
		if err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		if err := r.done(); err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		delete(n.tiles, t)
		delete(n.frozen, t)
		return nil
	case nodeFrameAssign:
		a, err := decodeAssignment(r)
		if err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		if err := r.done(); err != nil {
			return fmt.Errorf("%w: %v", wal.ErrCorrupt, err)
		}
		// Replay preserves monotonicity: frames were only journaled for
		// accepted (>= current) epochs.
		if a.Epoch >= n.epoch {
			n.epoch, n.assign = a.Epoch, a
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown node frame type %d", wal.ErrCorrupt, typ)
	}
}

// applyEntriesLocked applies a batch, gated per tile on the applied
// sequence high-water mark: an entry with Seq <= lastSeq is a duplicate
// from a retried batch, a replayed WAL, or a resync, and is skipped. This
// is what makes every delivery path idempotent.
func (n *Node) applyEntriesLocked(entries []Entry) {
	perTile := make(map[[2]int][]rssimap.Record)
	var order [][2]int
	for _, e := range entries {
		ts := n.tiles[e.Tile]
		if ts == nil {
			st, _ := rssimap.NewStore(n.cfg.Store, nil)
			ts = &tileState{store: st}
			n.tiles[e.Tile] = ts
		}
		if e.Seq <= ts.lastSeq {
			continue
		}
		ts.lastSeq = e.Seq
		ts.entries = append(ts.entries, e)
		if _, ok := perTile[e.Tile]; !ok {
			order = append(order, e.Tile)
		}
		perTile[e.Tile] = append(perTile[e.Tile], e.Rec)
	}
	for _, t := range order {
		n.tiles[t].store.Add(perTile[t])
	}
}

// journal appends one frame to the node WAL. Any failure is fatal: the
// node marks itself dead and refuses all further requests, modelling a
// process whose disk just failed (the chaos explorer kills nodes exactly
// this way). Memory-only nodes journal nothing.
func (n *Node) journalLocked(typ byte, payload []byte) error {
	if n.log == nil {
		return nil
	}
	if err := n.log.Append(typ, payload); err != nil {
		n.dead = fmt.Errorf("cluster: node %s storage failed: %w", n.id, err)
		return n.dead
	}
	return nil
}

// Compact writes a snapshot of the full node state and resets the WAL to
// the next generation — the same two-phase protocol as server persistence:
// the snapshot is durably renamed into place before the log resets, so a
// crash between the two replays the old log onto the old snapshot or
// re-points the new log, never loses a frame.
func (n *Node) Compact() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.log == nil {
		return nil
	}
	if n.dead != nil {
		return n.dead
	}
	payload, err := n.snapshotLocked()
	if err != nil {
		return err
	}
	gen := n.log.Generation() + 1
	if err := wal.WriteSnapshotFS(n.fs, n.snapPath(), gen, payload); err != nil {
		return err
	}
	return n.log.Reset(gen)
}

// snapshotLocked encodes the full node state with the wire codec —
// deterministic bytes, no gob: assignment, then each tile's applied log
// in tile order.
func (n *Node) snapshotLocked() ([]byte, error) {
	buf, err := appendAssignment(nil, n.assign)
	if err != nil {
		return nil, err
	}
	tiles := make([][2]int, 0, len(n.tiles))
	for t := range n.tiles {
		tiles = append(tiles, t)
	}
	sort.Slice(tiles, func(i, j int) bool { return tileLess(tiles[i], tiles[j]) })
	buf = appendU32(buf, uint32(len(tiles)))
	for _, t := range tiles {
		ts := n.tiles[t]
		if buf, err = appendTile(buf, t); err != nil {
			return nil, err
		}
		buf = appendU64(buf, ts.lastSeq)
		if buf, err = appendEntries(buf, ts.entries); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func (n *Node) loadSnapshot(payload []byte) error {
	r := &reader{data: payload}
	a, err := decodeAssignment(r)
	if err != nil {
		return err
	}
	n.epoch, n.assign = a.Epoch, a
	nt, err := r.u32()
	if err != nil {
		return err
	}
	for i := 0; i < int(nt); i++ {
		t, err := r.tile()
		if err != nil {
			return err
		}
		lastSeq, err := r.u64()
		if err != nil {
			return err
		}
		entries, err := decodeEntries(r)
		if err != nil {
			return err
		}
		st, err := rssimap.NewStore(n.cfg.Store, nil)
		if err != nil {
			return err
		}
		ts := &tileState{store: st, lastSeq: lastSeq, entries: entries}
		recs := make([]rssimap.Record, len(entries))
		for j, e := range entries {
			recs[j] = e.Rec
		}
		ts.store.Add(recs)
		n.tiles[t] = ts
	}
	return r.done()
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(buf []byte, v uint64) []byte {
	buf = appendU32(buf, uint32(v))
	return appendU32(buf, uint32(v>>32))
}

// Serve accepts shard-transport connections until the listener closes.
// Each connection is one request/response stream handled sequentially —
// the coordinator opens one ordered connection for ingest and a small
// pool for queries.
func (n *Node) Serve(ln net.Listener) error {
	n.connMu.Lock()
	if n.closed {
		n.connMu.Unlock()
		ln.Close()
		return errors.New("cluster: node closed")
	}
	n.ln = ln
	n.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		n.connMu.Lock()
		if n.closed {
			n.connMu.Unlock()
			conn.Close()
			return errors.New("cluster: node closed")
		}
		n.conns[conn] = struct{}{}
		n.connMu.Unlock()
		go n.serveConn(conn)
	}
}

// Listen starts serving on addr and returns the bound address — the
// one-call form cmd/lspserver's node mode and in-process tests use.
func (n *Node) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go n.Serve(ln)
	return ln.Addr(), nil
}

// Close stops serving and closes the WAL.
func (n *Node) Close() error {
	n.connMu.Lock()
	n.closed = true
	if n.ln != nil {
		n.ln.Close()
	}
	for c := range n.conns {
		c.Close()
	}
	n.connMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.log != nil {
		return n.log.Close()
	}
	return nil
}

func (n *Node) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		n.connMu.Lock()
		delete(n.conns, conn)
		n.connMu.Unlock()
	}()
	for {
		msg, err := readMsg(conn, time.Now().Add(transportIdle))
		if err != nil {
			return
		}
		resp, dl := n.dispatch(msg)
		if resp == nil {
			return
		}
		if err := writeMsg(conn, resp, dl); err != nil {
			return
		}
	}
}

// dispatch handles one request, returning the response and the absolute
// deadline for writing it (derived from the request's remaining-time
// field, so a forward whose originating client gave up cannot hold a
// node connection). Requests whose wire deadline carries the expired
// sentinel are refused unworked with statusExpired: the sender's own
// clock said the originating client already gave up, and the relative
// encoding means receiver clock skew cannot fake (or mask) that.
func (n *Node) dispatch(msg any) (any, time.Time) {
	now := time.Now()
	switch m := msg.(type) {
	case *Hello:
		return n.guard(m.Deadline, func() any { return n.handleHello() }), wireDeadline(m.Deadline, now, transportIdle)
	case *AddReq:
		return n.guard(m.Deadline, func() any { return n.handleAdd(m, false) }), wireDeadline(m.Deadline, now, transportIdle)
	case *InstallReq:
		return n.guard(m.Deadline, func() any { return n.handleAdd((*AddReq)(m), true) }), wireDeadline(m.Deadline, now, transportIdle)
	case *ConfReq:
		if m.Deadline == deadlineExpiredMs {
			return n.refuseExpired(&ConfResp{}), wireDeadline(m.Deadline, now, transportIdle)
		}
		return n.handleConf(m), wireDeadline(m.Deadline, now, transportIdle)
	case *FreezeReq:
		return n.guard(m.Deadline, func() any { return n.handleFreeze(m) }), wireDeadline(m.Deadline, now, transportIdle)
	case *FetchTileReq:
		if m.Deadline == deadlineExpiredMs {
			return n.refuseExpired(&TileState{}), wireDeadline(m.Deadline, now, transportIdle)
		}
		return n.handleFetch(m), wireDeadline(m.Deadline, now, transportIdle)
	case *DropReq:
		return n.guard(m.Deadline, func() any { return n.handleDrop(m) }), wireDeadline(m.Deadline, now, transportIdle)
	case *AssignReq:
		return n.guard(m.Deadline, func() any { return n.handleAssign(m) }), wireDeadline(m.Deadline, now, transportIdle)
	case *SeqsReq:
		if m.Deadline == deadlineExpiredMs {
			return n.refuseExpired(&SeqsResp{}), wireDeadline(m.Deadline, now, transportIdle)
		}
		return n.handleSeqs(), wireDeadline(m.Deadline, now, transportIdle)
	case *StatsReq:
		// Stats are cheap and operators want them even from skewed or
		// overloaded callers; never refuse them.
		return n.handleStats(), wireDeadline(m.Deadline, now, transportIdle)
	default:
		// Protocol violation (a response kind on the request stream):
		// drop the connection.
		return nil, time.Time{}
	}
}

// guard refuses Ack-answered requests whose deadline already expired.
func (n *Node) guard(deadline uint32, handle func() any) any {
	if deadline == deadlineExpiredMs {
		return n.refuseExpired(&Ack{})
	}
	return handle()
}

// refuseExpired stamps resp (a zero-valued typed response) with the
// statusExpired refusal and counts it.
func (n *Node) refuseExpired(resp any) any {
	n.mu.RLock()
	epoch := n.epoch
	n.mu.RUnlock()
	n.statMu.Lock()
	n.expired++
	n.statMu.Unlock()
	const msg = "deadline expired before dispatch"
	switch m := resp.(type) {
	case *Ack:
		m.Status, m.Epoch, m.Msg = statusExpired, epoch, msg
	case *ConfResp:
		m.Status, m.Epoch, m.Msg = statusExpired, epoch, msg
	case *TileState:
		m.Status, m.Epoch, m.Msg = statusExpired, epoch, msg
	case *SeqsResp:
		m.Status, m.Epoch, m.Msg = statusExpired, epoch, msg
	}
	return resp
}

func (n *Node) handleHello() *Ack {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.dead != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
	}
	return &Ack{Status: statusOK, Epoch: n.epoch}
}

// handleAdd ingests a batch (install=false) or a migration install
// (install=true). Both journal the batch as one WAL frame before touching
// memory, so recovery replays exactly the acked batches; the seq gate
// makes the replay — and any coordinator retry — idempotent.
func (n *Node) handleAdd(m *AddReq, install bool) *Ack {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
	}
	if m.Epoch != n.epoch {
		return &Ack{Status: statusWrongEpoch, Epoch: n.epoch}
	}
	if !install {
		for _, e := range m.Entries {
			if n.frozen[e.Tile] {
				return &Ack{Status: statusFrozen, Epoch: n.epoch, Msg: fmt.Sprintf("tile %v frozen", e.Tile)}
			}
		}
	}
	payload, err := appendEntries(nil, m.Entries)
	if err != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: err.Error()}
	}
	if err := n.journalLocked(nodeFrameEntries, payload); err != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: err.Error()}
	}
	n.applyEntriesLocked(m.Entries)
	n.statMu.Lock()
	if install {
		n.installs++
	} else {
		n.adds++
	}
	n.statMu.Unlock()
	return &Ack{Status: statusOK, Epoch: n.epoch}
}

// handleConf answers a point-confidence query. Queries fence hard: exact
// epoch match and a current replica claim — the primary, or (under a
// replicated assignment) the follower, whose tile copy is built from the
// same seq-gated entries in the same canonical order and is therefore
// bit-identical. During a migration's ownership flip no node outside the
// replica set at the current epoch will answer for the tile.
func (n *Node) handleConf(m *ConfReq) *ConfResp {
	n.mu.RLock()
	if n.dead != nil {
		resp := &ConfResp{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
		n.mu.RUnlock()
		return resp
	}
	if m.Epoch != n.epoch {
		resp := &ConfResp{Status: statusWrongEpoch, Epoch: n.epoch}
		n.mu.RUnlock()
		return resp
	}
	if !n.assign.replicaOf(m.Tile, n.id) {
		resp := &ConfResp{Status: statusNotOwner, Epoch: n.epoch,
			Msg: fmt.Sprintf("tile %v owned by %q", m.Tile, n.assign.Owner(m.Tile))}
		n.mu.RUnlock()
		return resp
	}
	ts := n.tiles[m.Tile]
	epoch := n.epoch
	n.mu.RUnlock()

	n.statMu.Lock()
	n.confs++
	n.statMu.Unlock()

	var confs []rssimap.PointConfidence
	if ts == nil {
		confs = shardstore.EmptyConfidences(nil, m.Scan, m.Cfg)
	} else {
		// The per-tile store has its own lock; queries on different tiles
		// of this node never contend.
		confs = ts.store.PointConfidencesInto(nil, m.Pos, m.Scan, m.Cfg)
	}
	return &ConfResp{Status: statusOK, Epoch: epoch, Confs: confs}
}

// handleFreeze marks a tile read-only ahead of a migration handoff. The
// flag is memory-only: if the node crashes mid-migration the coordinator
// restarts the handoff from scratch, re-freezing first.
func (n *Node) handleFreeze(m *FreezeReq) *Ack {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
	}
	if m.Epoch != n.epoch {
		return &Ack{Status: statusWrongEpoch, Epoch: n.epoch}
	}
	n.frozen[m.Tile] = true
	return &Ack{Status: statusOK, Epoch: n.epoch}
}

// handleFetch hands a tile's applied entry log to the migration driver,
// in applied (= sequence) order.
func (n *Node) handleFetch(m *FetchTileReq) *TileState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.dead != nil {
		return &TileState{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
	}
	if m.Epoch != n.epoch {
		return &TileState{Status: statusWrongEpoch, Epoch: n.epoch}
	}
	resp := &TileState{Status: statusOK, Epoch: n.epoch}
	if ts := n.tiles[m.Tile]; ts != nil {
		resp.Entries = append([]Entry(nil), ts.entries...)
	}
	return resp
}

// handleDrop removes a migrated-away tile. Journaled: a recovered node
// must not resurrect a tile it no longer owns.
func (n *Node) handleDrop(m *DropReq) *Ack {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
	}
	if m.Epoch != n.epoch {
		return &Ack{Status: statusWrongEpoch, Epoch: n.epoch}
	}
	payload, err := appendTile(nil, m.Tile)
	if err != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: err.Error()}
	}
	if err := n.journalLocked(nodeFrameDrop, payload); err != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: err.Error()}
	}
	delete(n.tiles, m.Tile)
	delete(n.frozen, m.Tile)
	return &Ack{Status: statusOK, Epoch: n.epoch}
}

// handleAssign installs a new assignment. Higher epochs are journaled
// before they apply and clear every freeze (each migration attempt —
// committed or aborted — ends in an epoch bump); the current epoch is an
// idempotent re-push; lower epochs are fenced off.
func (n *Node) handleAssign(m *AssignReq) *Ack {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
	}
	switch {
	case m.Assign.Epoch < n.epoch:
		return &Ack{Status: statusWrongEpoch, Epoch: n.epoch}
	case m.Assign.Epoch == n.epoch && n.epoch != 0:
		return &Ack{Status: statusOK, Epoch: n.epoch}
	}
	payload, err := appendAssignment(nil, m.Assign)
	if err != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: err.Error()}
	}
	if err := n.journalLocked(nodeFrameAssign, payload); err != nil {
		return &Ack{Status: statusFailed, Epoch: n.epoch, Msg: err.Error()}
	}
	n.epoch, n.assign = m.Assign.Epoch, m.Assign.Clone()
	for t := range n.frozen {
		delete(n.frozen, t)
	}
	return &Ack{Status: statusOK, Epoch: n.epoch}
}

func (n *Node) handleSeqs() *SeqsResp {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.dead != nil {
		return &SeqsResp{Status: statusFailed, Epoch: n.epoch, Msg: n.dead.Error()}
	}
	resp := &SeqsResp{Status: statusOK, Epoch: n.epoch}
	for t, ts := range n.tiles {
		resp.Tiles = append(resp.Tiles, TileSeq{Tile: t, Seq: ts.lastSeq})
	}
	sort.Slice(resp.Tiles, func(i, j int) bool { return tileLess(resp.Tiles[i].Tile, resp.Tiles[j].Tile) })
	return resp
}

func (n *Node) handleStats() *StatsResp {
	n.mu.RLock()
	defer n.mu.RUnlock()
	resp := &StatsResp{Status: statusOK, Epoch: n.epoch, Tiles: uint32(len(n.tiles))}
	if n.dead != nil {
		resp.Status = statusFailed
		resp.Msg = n.dead.Error()
	}
	for _, ts := range n.tiles {
		resp.Entries += uint64(len(ts.entries))
	}
	if n.log != nil {
		resp.WALFrames, resp.WALBytes = n.log.Stats()
		resp.Generation = n.log.Generation()
	}
	n.statMu.Lock()
	resp.ExpiredRejects = n.expired
	n.statMu.Unlock()
	return resp
}
