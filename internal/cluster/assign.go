// Tile→node assignment. The coordinator owns a versioned Assignment: a
// member list, an epoch that increments on every ownership change, and an
// override table for tiles that migration has moved off their default
// owner. Default ownership is rendezvous (highest-random-weight) hashing,
// so adding or removing a node reshuffles only the tiles that must move,
// and every party — coordinator or node — computes the same owner from the
// same assignment without coordination.
package cluster

import (
	"fmt"
	"sort"
)

// rendezvousScore ranks node id for tile t with FNV-1a over the tile
// coordinates and the id. The hash must be identical in every process —
// coordinator and nodes each compute Owner() from the shared assignment,
// and a process-seeded hash would give two processes two owners for one
// tile — so a fixed algorithm, not a seeded one, is load-bearing here.
func rendezvousScore(id string, t [2]int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(int64(t[0])))
	mix(uint64(int64(t[1])))
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// Assignment is one immutable version of the tile→node map.
type Assignment struct {
	// Epoch increments on every change. Nodes fence requests on it.
	Epoch uint64
	// Members are the node ids participating in rendezvous hashing,
	// kept sorted.
	Members []string
	// Overrides pins specific tiles to a node regardless of the hash —
	// the record of completed migrations.
	Overrides map[[2]int]string
	// Replicate turns on primary+follower placement: every tile gains a
	// second replica on its Follower node, dual-written by the
	// coordinator, and reads may fail over to it.
	Replicate bool
	// FollowerOverrides pins specific tiles' follower replicas to a node
	// regardless of the hash — the record of re-replications after a node
	// death or a migration that displaced the default follower.
	FollowerOverrides map[[2]int]string
}

// Owner returns the node responsible for tile t, or "" when the
// assignment has no members.
func (a Assignment) Owner(t [2]int) string {
	if id, ok := a.Overrides[t]; ok {
		return id
	}
	best, bestScore := "", uint64(0)
	for _, id := range a.Members {
		s := rendezvousScore(id, t)
		// Ties break toward the lexically larger id so the winner is
		// deterministic regardless of member order.
		if best == "" || s > bestScore || (s == bestScore && id > best) {
			best, bestScore = id, s
		}
	}
	return best
}

// Follower returns the node holding tile t's second replica, or "" when
// replication is off or the assignment has fewer than two members. The
// default follower is the highest-scoring member that is not the owner —
// the same rendezvous hash every process computes, so the coordinator and
// every node agree on the follower without coordination.
func (a Assignment) Follower(t [2]int) string {
	if !a.Replicate || len(a.Members) < 2 {
		return ""
	}
	owner := a.Owner(t)
	if id, ok := a.FollowerOverrides[t]; ok && id != owner {
		return id
	}
	best, bestScore := "", uint64(0)
	for _, id := range a.Members {
		if id == owner {
			continue
		}
		s := rendezvousScore(id, t)
		if best == "" || s > bestScore || (s == bestScore && id > best) {
			best, bestScore = id, s
		}
	}
	return best
}

// Clone returns a deep copy safe to mutate into the next version.
func (a Assignment) Clone() Assignment {
	c := Assignment{
		Epoch:     a.Epoch,
		Members:   append([]string(nil), a.Members...),
		Overrides: make(map[[2]int]string, len(a.Overrides)),
		Replicate: a.Replicate,
	}
	for t, id := range a.Overrides {
		c.Overrides[t] = id
	}
	if a.FollowerOverrides != nil {
		c.FollowerOverrides = make(map[[2]int]string, len(a.FollowerOverrides))
		for t, id := range a.FollowerOverrides {
			c.FollowerOverrides[t] = id
		}
	}
	return c
}

// NewAssignment builds the epoch-1 assignment over the given members.
func NewAssignment(members []string) (Assignment, error) {
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return Assignment{}, fmt.Errorf("cluster: duplicate member %q", ms[i])
		}
	}
	for _, id := range ms {
		if id == "" {
			return Assignment{}, fmt.Errorf("cluster: empty member id")
		}
	}
	return Assignment{Epoch: 1, Members: ms, Overrides: map[[2]int]string{}}, nil
}

// replicaOf reports whether id holds a replica (primary or follower) of
// tile t under this assignment.
func (a Assignment) replicaOf(t [2]int, id string) bool {
	return a.Owner(t) == id || (a.Replicate && a.Follower(t) == id)
}

// hasMember reports whether id participates in the assignment.
func (a Assignment) hasMember(id string) bool {
	for _, m := range a.Members {
		if m == id {
			return true
		}
	}
	return false
}
