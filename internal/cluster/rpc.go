package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// writeMsg encodes msg and writes the frame to the connection. A non-zero
// deadline bounds the write.
func writeMsg(conn net.Conn, msg any, deadline time.Time) error {
	frame, err := EncodeFrame(msg)
	if err != nil {
		return err
	}
	if err := conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	_, err = conn.Write(frame)
	return err
}

// readMsg reads one frame off the connection and decodes it. A non-zero
// deadline bounds the read.
func readMsg(conn net.Conn, deadline time.Time) (any, error) {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	var hdr [6]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[2:6])
	if int64(plen) > maxFrameBytes-6 {
		return nil, fmt.Errorf("%w: payload of %d bytes", ErrOversized, plen)
	}
	frame := make([]byte, 6+int(plen))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(conn, frame[6:]); err != nil {
		return nil, err
	}
	return DecodeFrame(frame)
}

// deadlineExpiredMs is the wire sentinel for "the deadline had already
// passed when the sender stamped this request". The field is otherwise
// relative (milliseconds remaining), so it is immune to clock skew between
// sender and receiver — only the sender's own clock decides expiry, and
// the receiver refuses the request unworked on seeing the sentinel.
const deadlineExpiredMs = ^uint32(0)

// deadlineMs converts an absolute deadline to the wire's "milliseconds
// remaining" field: 0 means none, already-expired deadlines become the
// deadlineExpiredMs sentinel so the receiver can refuse without guessing
// at the sender's clock.
func deadlineMs(deadline time.Time, now time.Time) uint32 {
	if deadline.IsZero() {
		return 0
	}
	left := deadline.Sub(now)
	if left <= 0 {
		return deadlineExpiredMs
	}
	ms := (left + time.Millisecond - 1) / time.Millisecond
	if ms > 1<<31 {
		return 1 << 31
	}
	return uint32(ms)
}

// wireDeadline converts a wire deadline field back to an absolute time for
// conn deadlines; zero (no deadline) maps to a generous transport bound so
// a dead peer cannot wedge a connection forever, and the expired sentinel
// maps to a minimal bound (the handler refuses such requests anyway, but
// the response still needs a write deadline).
func wireDeadline(ms uint32, now time.Time, fallback time.Duration) time.Time {
	switch ms {
	case 0:
		return now.Add(fallback)
	case deadlineExpiredMs:
		return now.Add(time.Second)
	}
	return now.Add(time.Duration(ms) * time.Millisecond)
}
