package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/shardstore"
	"trajforge/internal/wifi"
)

// startReplicatedCluster boots n durable shard nodes and a replicated
// coordinator over them (durable itself when coordDir is non-empty). Retry
// is disabled so tests that kill nodes fail over immediately; the retry
// path has its own test below.
func startReplicatedCluster(t *testing.T, n int, coordDir string) *testCluster {
	t.Helper()
	tc := &testCluster{
		nodes: make(map[string]*Node),
		addrs: make(map[string]string),
		dirs:  make(map[string]string),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		tc.dirs[id] = t.TempDir()
		node, err := NewNode(id, shardstore.DefaultConfig(), NodeOptions{Dir: tc.dirs[id]})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[id] = node
		tc.addrs[id] = addr.String()
	}
	store, err := NewStore(Options{
		Shard: shardstore.DefaultConfig(), Nodes: tc.addrs,
		Replicate: true, Dir: coordDir,
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.store = store
	t.Cleanup(func() {
		store.Close()
		for _, node := range tc.nodes {
			node.Close()
		}
	})
	return tc
}

// TestFollowerReadBitIdentity grows a replicated cluster, migrates its
// hottest tile, kills that tile's (post-migration) primary outright, and
// then hammers the degraded cluster from concurrent readers: every answer
// must be bit-identical to a rebuilt single-process sharded store, and at
// least some must have been served by follower replicas.
func TestFollowerReadBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const width, height = 120, 120
	recs := randRecords(rng, 900, width, height)

	tc := startReplicatedCluster(t, 3, "")
	half := len(recs) / 2
	tc.store.Add(recs[:half])

	tile, ok := tc.store.BusiestTile()
	if !ok {
		t.Fatal("no busiest tile")
	}
	a := tc.store.Assignment()
	owner, follower := a.Owner(tile), a.Follower(tile)
	if follower == "" || follower == owner {
		t.Fatalf("replicated tile %v has follower %q (owner %q)", tile, follower, owner)
	}
	var to string
	for id := range tc.nodes {
		if id != owner && id != follower {
			to = id
		}
	}
	if err := tc.store.Migrate(tile, to); err != nil {
		t.Fatal(err)
	}
	tc.store.Add(recs[half:])

	// Kill the tile's current primary: every read it owned must fail over.
	victim := tc.store.Assignment().Owner(tile)
	if err := tc.nodes[victim].Close(); err != nil {
		t.Fatal(err)
	}

	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rssimap.DefaultFeatureConfig()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 4; i++ {
				u := randUpload(r, 30, width, height)
				want, err := sharded.Features(u, cfg)
				if err != nil {
					errCh <- err
					return
				}
				got, err := tc.store.Features(u, cfg)
				if err != nil {
					errCh <- fmt.Errorf("cluster features with dead primary: %w", err)
					return
				}
				for j := range want {
					if want[j] != got[j] {
						errCh <- fmt.Errorf("feature %d differs: %v vs %v", j, want[j], got[j])
						return
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := tc.store.Stats()
	if !st.Replicated {
		t.Fatal("stats do not report replication on")
	}
	if st.ReplicaReads == 0 {
		t.Fatal("no query was served by a follower replica")
	}
}

// TestCoordinatorWALRecovery restarts a durable coordinator over its own
// WAL: the canonical log, the tile index, and the assignment epoch all come
// back from disk with zero seed-corpus replay, and queries match a
// single-process store bit for bit.
func TestCoordinatorWALRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const width, height = 120, 120
	recs := randRecords(rng, 700, width, height)
	coordDir := t.TempDir()

	tc := startReplicatedCluster(t, 3, coordDir)
	tc.store.Add(recs[:400])
	tile, ok := tc.store.BusiestTile()
	if !ok {
		t.Fatal("no busiest tile")
	}
	owner := tc.store.Assignment().Owner(tile)
	for id := range tc.nodes {
		if id != owner {
			if err := tc.store.Migrate(tile, id); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	tc.store.Add(recs[400:])
	oldEpoch := tc.store.Assignment().Epoch
	if err := tc.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same directory, same still-running nodes, and NO re-Add.
	restarted, err := NewStore(Options{
		Shard: shardstore.DefaultConfig(), Nodes: tc.addrs,
		Replicate: true, Dir: coordDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()

	if restarted.Len() != len(recs) {
		t.Fatalf("recovered %d canonical records from the coordinator WAL, want %d", restarted.Len(), len(recs))
	}
	if e := restarted.Assignment().Epoch; e <= oldEpoch {
		t.Fatalf("recovered epoch %d does not fence above previous incarnation's %d", e, oldEpoch)
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, restarted, sharded, width, height)
}

// TestCoordinatorCompactionPreservesState checkpoints the coordinator WAL
// mid-growth and restarts from snapshot + tail.
func TestCoordinatorCompactionPreservesState(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const width, height = 100, 100
	recs := randRecords(rng, 600, width, height)
	coordDir := t.TempDir()

	tc := startReplicatedCluster(t, 2, coordDir)
	tc.store.Add(recs[:300])
	if err := tc.store.Compact(); err != nil {
		t.Fatal(err)
	}
	tc.store.Add(recs[300:])
	if err := tc.store.Close(); err != nil {
		t.Fatal(err)
	}

	restarted, err := NewStore(Options{
		Shard: shardstore.DefaultConfig(), Nodes: tc.addrs,
		Replicate: true, Dir: coordDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if restarted.Len() != len(recs) {
		t.Fatalf("recovered %d records after compaction, want %d", restarted.Len(), len(recs))
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, restarted, sharded, width, height)
}

// TestCoordinatorFailoverLease covers the lease-file protocol and the
// epoch fence behind it: a standby cannot take a live lease, takes an
// expired one, and once its store incarnation fences a higher epoch the
// old coordinator's pushes bounce off the nodes.
func TestCoordinatorFailoverLease(t *testing.T) {
	path := t.TempDir() + "/coordinator.lease"
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	active, err := NewLease(nil, path, "coord-1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := NewLease(nil, path, "coord-2", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := active.Acquire(now); err != nil {
		t.Fatal(err)
	}
	if err := standby.Acquire(now); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("standby acquired a live lease: %v", err)
	}
	if err := active.Renew(now.Add(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Past the ttl the standby takes over; the stale holder's renew fails.
	late := now.Add(3 * time.Second)
	if err := standby.Acquire(late); err != nil {
		t.Fatalf("standby could not take an expired lease: %v", err)
	}
	if err := active.Renew(late); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale holder renewed a lost lease: %v", err)
	}
	if err := standby.Release(late); err != nil {
		t.Fatal(err)
	}
	if holder, live, err := standby.Holder(late); err != nil || live {
		t.Fatalf("released lease still live (holder %q, err %v)", holder, err)
	}

	// The fence behind the lease: once a standby coordinator comes up at a
	// higher epoch, the nodes refuse the old coordinator's ingestion.
	rng := rand.New(rand.NewSource(31))
	recs := randRecords(rng, 200, 80, 80)
	tc := startCluster(t, 2, false)
	tc.store.Add(recs[:100])

	usurper, err := NewStore(Options{Shard: shardstore.DefaultConfig(), Nodes: tc.addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer usurper.Close()
	if e, o := usurper.Assignment().Epoch, tc.store.Assignment().Epoch; e <= o {
		t.Fatalf("standby epoch %d does not fence above old coordinator epoch %d", e, o)
	}
	tc.store.Add(recs[100:])
	fenced := 0
	for _, ns := range tc.store.Stats().Nodes {
		if ns.Unsynced {
			fenced++
		}
	}
	if fenced == 0 {
		t.Fatal("old coordinator was not fenced off any node after the takeover")
	}
}

// TestRebalanceMovesHottestTile constructs a fully lopsided cluster (every
// tile migrated onto one node) and drives Rebalance steps: each moves the
// hottest tile off the most-loaded node, the counter records it, repeated
// steps converge, and answers stay bit-identical throughout.
func TestRebalanceMovesHottestTile(t *testing.T) {
	tc := startCluster(t, 3, false)
	rng := rand.New(rand.NewSource(37))
	recs := randRecords(rng, 600, 40, 40) // 4 non-empty 25m tiles
	tc.store.Add(recs)

	tc.store.mu.RLock()
	tiles := make([][2]int, 0, len(tc.store.tileIndex))
	for tile, idxs := range tc.store.tileIndex {
		if len(idxs) > 0 {
			tiles = append(tiles, tile)
		}
	}
	tc.store.mu.RUnlock()
	if len(tiles) < 2 {
		t.Fatalf("workload spans %d tiles, need >= 2", len(tiles))
	}
	for _, tile := range tiles {
		if err := tc.store.Migrate(tile, "n1"); err != nil {
			t.Fatalf("migrate %v: %v", tile, err)
		}
	}

	moved, err := tc.store.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("rebalance did not move a tile off a node owning everything")
	}
	if st := tc.store.Stats(); st.Rebalances != 1 {
		t.Fatalf("rebalances counter %d, want 1", st.Rebalances)
	}
	off := 0
	for _, tile := range tiles {
		if tc.store.Assignment().Owner(tile) != "n1" {
			off++
		}
	}
	if off == 0 {
		t.Fatal("every tile still owned by the most-loaded node")
	}

	// Repeated steps converge (bounded by the tile count) and never error.
	for i := 0; i < len(tiles)+1; i++ {
		again, err := tc.store.Rebalance()
		if err != nil {
			t.Fatal(err)
		}
		if !again {
			break
		}
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, tc.store, sharded, 40, 40)
}

// TestExpiredDeadlineRefused covers the typed refusal for requests whose
// deadline passed before dispatch — at the coordinator, and in the wire
// encoding's clock-skew-immune sentinel.
func TestExpiredDeadlineRefused(t *testing.T) {
	tc := startCluster(t, 2, false)
	rng := rand.New(rand.NewSource(41))
	tc.store.Add(randRecords(rng, 400, 80, 80))

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	u := randUpload(rng, 10, 80, 80)
	if _, err := tc.store.FeaturesContext(ctx, u, rssimap.DefaultFeatureConfig()); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired-context query returned %v, want ErrExpired", err)
	}
	if st := tc.store.Stats(); st.ExpiredRejects == 0 {
		t.Fatal("expired refusal not counted in coordinator stats")
	}

	// Wire encoding: an already-expired deadline becomes the sentinel
	// regardless of receiver clock skew, because the field is relative to
	// the SENDER's clock.
	sender := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if ms := deadlineMs(sender.Add(-time.Millisecond), sender); ms != deadlineExpiredMs {
		t.Fatalf("expired deadline encoded as %d, want sentinel", ms)
	}
	if ms := deadlineMs(sender.Add(250*time.Millisecond), sender); ms != 250 {
		t.Fatalf("250ms deadline encoded as %d", ms)
	}
	// A receiver whose clock is an hour behind still derives ~250ms of
	// budget, and the sentinel still maps to a minimal response bound.
	skewed := sender.Add(-time.Hour)
	if dl := wireDeadline(250, skewed, 10*time.Second); dl.Sub(skewed) != 250*time.Millisecond {
		t.Fatalf("skewed receiver derived %v of budget, want 250ms", dl.Sub(skewed))
	}
	if dl := wireDeadline(deadlineExpiredMs, skewed, 10*time.Second); dl.Sub(skewed) != time.Second {
		t.Fatalf("sentinel mapped to %v, want 1s response bound", dl.Sub(skewed))
	}
}

// TestNodeRefusesExpiredRequests drives the node-side refusal directly: a
// request arriving with the expired sentinel is answered with a typed
// statusExpired response, unworked, and counted in the node's stats.
func TestNodeRefusesExpiredRequests(t *testing.T) {
	tc := startCluster(t, 1, false)
	rng := rand.New(rand.NewSource(43))
	recs := randRecords(rng, 100, 40, 40)
	tc.store.Add(recs)
	tile, ok := tc.store.BusiestTile()
	if !ok {
		t.Fatal("no busiest tile")
	}
	nc := tc.store.nodes["n1"]
	resp, err := nc.call(&ConfReq{
		Deadline: deadlineExpiredMs,
		Epoch:    tc.store.Assignment().Epoch,
		Tile:     tile,
		Pos:      recs[0].Pos,
		Cfg:      rssimap.DefaultFeatureConfig(),
		Scan:     wifi.Scan{{MAC: "02:4e:00:00:00:01", RSSI: -50}},
	}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := resp.(*ConfResp)
	if !ok {
		t.Fatalf("got %T", resp)
	}
	if cr.Status != statusExpired {
		t.Fatalf("node answered expired request with status %d, want statusExpired", cr.Status)
	}
	stats, err := nc.call(&StatsReq{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := stats.(*StatsResp)
	if !ok {
		t.Fatalf("got %T", stats)
	}
	if sr.ExpiredRejects == 0 {
		t.Fatal("node did not count the expired rejection")
	}
}

// TestIngestRetriesAcrossNodeRestart bounces a durable node mid-workload:
// the coordinator's jittered transport retry re-dials, the per-tile seq
// gate absorbs any duplicate delivery, and the final state is bit-identical
// to a store that never saw the bounce.
func TestIngestRetriesAcrossNodeRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const width, height = 80, 80
	recs := randRecords(rng, 400, width, height)

	tc := &testCluster{
		nodes: make(map[string]*Node),
		addrs: make(map[string]string),
		dirs:  make(map[string]string),
	}
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("n%d", i+1)
		tc.dirs[id] = t.TempDir()
		node, err := NewNode(id, shardstore.DefaultConfig(), NodeOptions{Dir: tc.dirs[id]})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[id] = node
		tc.addrs[id] = addr.String()
	}
	store, err := NewStore(Options{
		Shard: shardstore.DefaultConfig(), Nodes: tc.addrs,
		Retry: &resilience.RetryPolicy{MaxAttempts: 20, Base: 20 * time.Millisecond, Max: 100 * time.Millisecond, Budget: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		for _, n := range tc.nodes {
			n.Close()
		}
	})

	store.Add(recs[:200])

	// Bounce n1: close it, restart it from its WAL on the SAME address a
	// beat later, while ingestion continues under the retry policy.
	victim := "n1"
	addr := tc.addrs[victim]
	if err := tc.nodes[victim].Close(); err != nil {
		t.Fatal(err)
	}
	restartDone := make(chan error, 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		node, err := NewNode(victim, shardstore.DefaultConfig(), NodeOptions{Dir: tc.dirs[victim]})
		if err != nil {
			restartDone <- err
			return
		}
		if _, err := node.Listen(addr); err != nil {
			restartDone <- err
			return
		}
		tc.nodes[victim] = node
		restartDone <- nil
	}()

	store.Add(recs[200:])
	if err := <-restartDone; err != nil {
		t.Fatal(err)
	}
	// Heal whatever the bounce window lost, then verify bit-identity.
	for id := range tc.nodes {
		if err := store.Resync(id); err != nil {
			t.Fatalf("resync %s: %v", id, err)
		}
	}
	if st := store.Stats(); st.RetriedCalls == 0 {
		t.Fatal("node bounce never exercised the transport retry")
	}
	sharded, err := shardstore.New(shardstore.DefaultConfig(), recs)
	if err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesSharded(t, rng, store, sharded, width, height)
}

// TestHealthStatusDegraded drives the coordinator's degraded signal: a
// healthy replicated cluster reports ready; with every replica of a tile
// dead, the store reports degraded with a reason.
func TestHealthStatusDegraded(t *testing.T) {
	tc := startReplicatedCluster(t, 2, "")
	rng := rand.New(rand.NewSource(53))
	recs := randRecords(rng, 200, 60, 60)
	tc.store.Add(recs)
	if deg, reason := tc.store.HealthStatus(); deg {
		t.Fatalf("healthy cluster reports degraded: %s", reason)
	}
	// Two nodes means every tile's replica set is exactly {n1, n2}: kill
	// both and every non-empty tile goes dark.
	for _, n := range tc.nodes {
		n.Close()
	}
	// A probe on a non-empty tile makes the coordinator notice the deaths.
	tc.store.ConfidenceTol(recs[0].Pos, "02:4e:00:00:00:01", -50, 5, 2)
	deg, reason := tc.store.HealthStatus()
	if !deg {
		t.Fatal("cluster with every node dead reports healthy")
	}
	if reason == "" {
		t.Fatal("degraded health carries no reason")
	}
}
