package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"trajforge/internal/resilience"
)

// nodeClient is the coordinator's connection bundle for one node: an
// ordered ingest stream (one conn, serialized by sendMu, fed by an outbox
// appended under the coordinator lock so batch order equals canonical
// order) and a small pool of query connections.
type nodeClient struct {
	id      string
	addr    string
	timeout time.Duration
	// retry is the transient-transport-error policy (dial refused, EOF,
	// reset). Every shard request is idempotent — adds and installs by the
	// per-tile seq gate, assignment pushes and drops by epoch, reads by
	// nature — so re-sending a request whose response was lost is safe.
	retry resilience.RetryPolicy
	// retried counts retried transport attempts, shared across the
	// store's clients for /v1/stats.
	retried *atomic.Uint64

	// sendMu serializes the ingest stream; the conn below it is only
	// touched with sendMu held.
	sendMu sync.Mutex
	ingest net.Conn

	mu       sync.Mutex
	outbox   []*AddReq
	unsynced bool
	lastErr  error

	poolMu sync.Mutex
	pool   []net.Conn
}

const queryPoolSize = 4

// flushRetries bounds wrongEpoch re-pushes per batch before giving up.
const flushRetries = 8

func (nc *nodeClient) dial() (net.Conn, error) {
	d := net.Dialer{Timeout: nc.timeout}
	return d.Dial("tcp", nc.addr)
}

// transportDeadline resolves an absolute deadline: the caller's if set,
// otherwise now + the client timeout.
func (nc *nodeClient) transportDeadline(deadline time.Time) time.Time {
	if deadline.IsZero() {
		return time.Now().Add(nc.timeout)
	}
	return deadline
}

// call runs one request/response exchange on a pooled query connection,
// retrying transient transport errors under the client's jittered policy.
func (nc *nodeClient) call(msg any, deadline time.Time) (any, error) {
	return nc.withRetry(deadline, func() (any, error) {
		return nc.callOnce(msg, deadline)
	})
}

func (nc *nodeClient) callOnce(msg any, deadline time.Time) (any, error) {
	conn, err := nc.acquire()
	if err != nil {
		return nil, err
	}
	dl := nc.transportDeadline(deadline)
	if err := writeMsg(conn, msg, dl); err != nil {
		conn.Close()
		return nil, err
	}
	resp, err := readMsg(conn, dl)
	if err != nil {
		conn.Close()
		return nil, err
	}
	nc.release(conn)
	return resp, nil
}

// withRetry runs fn until it succeeds, the policy is exhausted, or the
// caller's deadline passed. Only transport errors reach fn's error return
// (typed refusals come back as responses), and every shard request is
// idempotent, so a blind re-send after a node restart is safe — this is
// what keeps a mid-batch node bounce invisible to upload clients.
func (nc *nodeClient) withRetry(deadline time.Time, fn func() (any, error)) (any, error) {
	r := resilience.NewRetrier(nc.retry)
	for {
		resp, err := fn()
		if err == nil {
			return resp, nil
		}
		d, ok := r.Next(0)
		if !ok {
			return nil, err
		}
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			return nil, err
		}
		if nc.retried != nil {
			nc.retried.Add(1)
		}
		time.Sleep(d)
	}
}

func (nc *nodeClient) acquire() (net.Conn, error) {
	nc.poolMu.Lock()
	if n := len(nc.pool); n > 0 {
		conn := nc.pool[n-1]
		nc.pool = nc.pool[:n-1]
		nc.poolMu.Unlock()
		return conn, nil
	}
	nc.poolMu.Unlock()
	return nc.dial()
}

func (nc *nodeClient) release(conn net.Conn) {
	nc.poolMu.Lock()
	if len(nc.pool) < queryPoolSize {
		nc.pool = append(nc.pool, conn)
		nc.poolMu.Unlock()
		return
	}
	nc.poolMu.Unlock()
	conn.Close()
}

// callLocked runs one exchange on the ingest conn, retrying transient
// transport errors (reconnecting between attempts). sendMu must be held.
func (nc *nodeClient) callLocked(msg any, deadline time.Time) (any, error) {
	return nc.withRetry(deadline, func() (any, error) {
		return nc.callLockedOnce(msg, deadline)
	})
}

func (nc *nodeClient) callLockedOnce(msg any, deadline time.Time) (any, error) {
	if nc.ingest == nil {
		conn, err := nc.dial()
		if err != nil {
			return nil, err
		}
		nc.ingest = conn
	}
	dl := nc.transportDeadline(deadline)
	if err := writeMsg(nc.ingest, msg, dl); err != nil {
		nc.ingest.Close()
		nc.ingest = nil
		return nil, err
	}
	resp, err := readMsg(nc.ingest, dl)
	if err != nil {
		nc.ingest.Close()
		nc.ingest = nil
		return nil, err
	}
	return resp, nil
}

// ackCallLocked is callLocked for requests answered by an Ack.
func (nc *nodeClient) ackCallLocked(msg any) (*Ack, error) {
	resp, err := nc.callLocked(msg, time.Time{})
	if err != nil {
		return nil, err
	}
	ack, ok := resp.(*Ack)
	if !ok {
		return nil, fmt.Errorf("%w: %T where an ack was expected", ErrKind, resp)
	}
	return ack, nil
}

// pushAssignLocked installs an assignment on the node. sendMu must be held.
func (nc *nodeClient) pushAssignLocked(assign Assignment) error {
	ack, err := nc.ackCallLocked(&AssignReq{Assign: assign})
	if err != nil {
		return err
	}
	switch ack.Status {
	case statusOK:
		return nil
	case statusWrongEpoch:
		// The node journaled a higher epoch than ours: a newer coordinator
		// exists. Fencing worked — stop driving this node.
		return fmt.Errorf("cluster: node %s fenced assignment push: node epoch %d > %d", nc.id, ack.Epoch, assign.Epoch)
	default:
		return fmt.Errorf("cluster: assign push to %s failed: %s", nc.id, ack.Msg)
	}
}

// pushAssign is pushAssignLocked taking sendMu itself.
func (nc *nodeClient) pushAssign(assign Assignment) error {
	nc.sendMu.Lock()
	defer nc.sendMu.Unlock()
	return nc.pushAssignLocked(assign)
}

// enqueue appends one ordered batch. Called under the coordinator lock so
// outbox order equals canonical-log order.
func (nc *nodeClient) enqueue(req *AddReq) {
	nc.mu.Lock()
	nc.outbox = append(nc.outbox, req)
	nc.mu.Unlock()
}

// flush drains the outbox in order over the ingest stream, healing epoch
// skew in place: a wrongEpoch ack re-pushes the coordinator's current
// assignment and re-stamps the batch. Any wire failure leaves the node
// unsynced — the canonical log replays the tail during Resync, so a lost
// batch is a retransmit, never data loss.
func (nc *nodeClient) flush(s *Store) error {
	nc.sendMu.Lock()
	defer nc.sendMu.Unlock()
	for {
		nc.mu.Lock()
		if nc.unsynced {
			err := nc.lastErr
			nc.mu.Unlock()
			return err
		}
		if len(nc.outbox) == 0 {
			nc.mu.Unlock()
			return nil
		}
		req := nc.outbox[0]
		nc.mu.Unlock()

		sent := false
		for attempt := 0; attempt < flushRetries; attempt++ {
			ack, err := nc.ackCallLocked(req)
			if err != nil {
				return err
			}
			switch ack.Status {
			case statusOK:
				sent = true
			case statusWrongEpoch:
				s.mu.RLock()
				assign := s.assign.Clone()
				s.mu.RUnlock()
				if ack.Epoch > assign.Epoch {
					return fmt.Errorf("cluster: node %s fenced ingest: node epoch %d > %d", nc.id, ack.Epoch, assign.Epoch)
				}
				if err := nc.pushAssignLocked(assign); err != nil {
					return err
				}
				req.Epoch = assign.Epoch
				continue
			default:
				return fmt.Errorf("cluster: ingest to %s failed: status %d %s", nc.id, ack.Status, ack.Msg)
			}
			break
		}
		if !sent {
			return fmt.Errorf("cluster: ingest to %s exhausted epoch retries", nc.id)
		}
		nc.mu.Lock()
		nc.outbox = nc.outbox[1:]
		nc.mu.Unlock()
	}
}

// markUnsynced records a node failure: the outbox is discarded (Resync
// replays from the canonical log) and connections are torn down.
func (nc *nodeClient) markUnsynced(err error) {
	nc.mu.Lock()
	nc.unsynced = true
	if err != nil {
		nc.lastErr = err
	}
	nc.outbox = nil
	nc.mu.Unlock()
	nc.closeConns()
}

func (nc *nodeClient) isUnsynced() bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.unsynced
}

func (nc *nodeClient) clearUnsynced() {
	nc.mu.Lock()
	nc.unsynced = false
	nc.lastErr = nil
	nc.mu.Unlock()
}

func (nc *nodeClient) closeConns() {
	nc.poolMu.Lock()
	for _, c := range nc.pool {
		c.Close()
	}
	nc.pool = nil
	nc.poolMu.Unlock()
}

func (nc *nodeClient) close() {
	nc.sendMu.Lock()
	if nc.ingest != nil {
		nc.ingest.Close()
		nc.ingest = nil
	}
	nc.sendMu.Unlock()
	nc.closeConns()
}
