package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/stats"
	"trajforge/internal/trajectory"
)

var _t0 = time.Date(2022, 4, 10, 8, 0, 0, 0, time.UTC)

// straight 600 m route with one right-angle corner at 300 m.
func cornerRoute() []geo.Point {
	return []geo.Point{{X: 0, Y: 0}, {X: 300, Y: 0}, {X: 300, Y: 300}}
}

func simulate(t *testing.T, seed int64, mode trajectory.Mode, maxPoints int) *Track {
	t.Helper()
	tk, err := Simulate(rand.New(rand.NewSource(seed)), Options{
		Route:     cornerRoute(),
		Mode:      mode,
		Start:     _t0,
		Interval:  time.Second,
		MaxPoints: maxPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestSimulateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(rng, Options{Route: []geo.Point{{X: 1, Y: 1}}, Interval: time.Second}); err == nil {
		t.Fatal("short route must error")
	}
	if _, err := Simulate(rng, Options{Route: cornerRoute()}); err == nil {
		t.Fatal("zero interval must error")
	}
	degenerate := []geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}
	if _, err := Simulate(rng, Options{Route: degenerate, Interval: time.Second}); err == nil {
		t.Fatal("zero-length route must error")
	}
}

func TestSimulateProducesRegularTrajectory(t *testing.T) {
	tk := simulate(t, 2, trajectory.ModeWalking, 60)
	if len(tk.Points) != 60 {
		t.Fatalf("points = %d, want 60", len(tk.Points))
	}
	tr := tk.Trajectory()
	if err := tr.Validate(10 * time.Millisecond); err != nil {
		t.Fatalf("trajectory invalid: %v", err)
	}
	if tr.Mode != trajectory.ModeWalking {
		t.Fatal("mode not propagated")
	}
	if got := len(tk.TruePositions()); got != 60 {
		t.Fatalf("true positions = %d", got)
	}
}

func TestSimulateSpeedsAreRealistic(t *testing.T) {
	for _, tc := range []struct {
		mode       trajectory.Mode
		minMean    float64
		maxMean    float64
		hardCeil   float64
		pointCount int
	}{
		{trajectory.ModeWalking, 0.6, 1.8, 3.0, 120},
		{trajectory.ModeCycling, 2.0, 5.0, 9.0, 100},
		{trajectory.ModeDriving, 5.0, 13.0, 20.0, 40},
	} {
		tk := simulate(t, 3, tc.mode, tc.pointCount)
		speeds := tk.Trajectory().Speeds()
		mean := stats.Mean(speeds)
		if mean < tc.minMean || mean > tc.maxMean {
			t.Fatalf("%v mean speed %v outside [%v, %v]", tc.mode, mean, tc.minMean, tc.maxMean)
		}
		if mx := stats.Max(speeds); mx > tc.hardCeil {
			t.Fatalf("%v max speed %v exceeds %v", tc.mode, mx, tc.hardCeil)
		}
	}
}

func TestSimulateRespectsAccelerationLimits(t *testing.T) {
	tk := simulate(t, 5, trajectory.ModeDriving, 60)
	prof := ProfileFor(trajectory.ModeDriving)
	for i, a := range tk.Trajectory().Accelerations() {
		// GPS noise adds apparent acceleration; allow ~4 sd of slack.
		slack := 2.5
		if a > prof.MaxAccel+slack || a < -prof.MaxDecel-slack {
			t.Fatalf("accel[%d] = %v outside profile bounds", i, a)
		}
	}
}

func TestSimulateStaysNearRoute(t *testing.T) {
	tk := simulate(t, 7, trajectory.ModeCycling, 90)
	route := cornerRoute()
	prof := ProfileFor(trajectory.ModeCycling)
	maxOff := prof.LateralSD*4 + 3 // lateral wander + GPS + corner cut
	for i, p := range tk.Points {
		if d := distToPolyline(p.True, route); d > maxOff {
			t.Fatalf("point %d is %v m from route (max %v)", i, d, maxOff)
		}
	}
}

func TestSimulateRunsDiffer(t *testing.T) {
	a := simulate(t, 11, trajectory.ModeWalking, 60).Trajectory()
	b := simulate(t, 12, trajectory.ModeWalking, 60).Trajectory()
	var diff float64
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		diff += geo.Dist(a.Points[i].Pos, b.Points[i].Pos)
	}
	if diff/float64(n) < 0.3 {
		t.Fatalf("independent runs nearly identical (mean diff %v m)", diff/float64(n))
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	a := simulate(t, 21, trajectory.ModeDriving, 40)
	b := simulate(t, 21, trajectory.ModeDriving, 40)
	for i := range a.Points {
		if a.Points[i].Fix != b.Points[i].Fix {
			t.Fatalf("same seed diverged at point %d", i)
		}
	}
}

func TestSimulateEndsAtRouteEnd(t *testing.T) {
	tk, err := Simulate(rand.New(rand.NewSource(31)), Options{
		Route:    cornerRoute(),
		Mode:     trajectory.ModeDriving,
		Start:    _t0,
		Interval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := tk.Points[len(tk.Points)-1].True
	routeEnd := geo.Point{X: 300, Y: 300}
	if geo.Dist(end, routeEnd) > 25 {
		t.Fatalf("track ends %v m from route end", geo.Dist(end, routeEnd))
	}
}

func TestGPSNoiseIsAutocorrelated(t *testing.T) {
	// The error series of consecutive fixes must be smooth: the mean step of
	// the error process must be well below its marginal spread.
	tk := simulate(t, 41, trajectory.ModeWalking, 200)
	errsX := make([]float64, len(tk.Points))
	for i, p := range tk.Points {
		errsX[i] = p.Fix.X - p.True.X
	}
	var stepSum float64
	for i := 1; i < len(errsX); i++ {
		stepSum += math.Abs(errsX[i] - errsX[i-1])
	}
	meanStep := stepSum / float64(len(errsX)-1)
	spread := stats.StdDev(errsX)
	if spread <= 0 || meanStep > spread {
		t.Fatalf("GPS error not autocorrelated: mean step %v vs spread %v", meanStep, spread)
	}
}

func TestStaticFixesAndCalibrateR(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	fixes, err := StaticFixes(rng, DefaultGPS(), geo.Point{X: 10, Y: -5}, 500, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := CalibrateR(fixes)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: sigma ~ 0.5 m, R = 6 sigma ~ 3 m.
	if cal.Sigma < 0.25 || cal.Sigma > 0.8 {
		t.Fatalf("sigma = %v, want ~0.5", cal.Sigma)
	}
	if math.Abs(cal.R-6*cal.Sigma) > 1e-12 {
		t.Fatal("R must equal 6 sigma")
	}
	if geo.Dist(cal.MeanPos, geo.Point{X: 10, Y: -5}) > 1 {
		t.Fatalf("mean position %v too far from truth", cal.MeanPos)
	}
	if cal.N != 500 {
		t.Fatalf("N = %d", cal.N)
	}
}

func TestStaticFixesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := StaticFixes(rng, DefaultGPS(), geo.Point{}, 0, time.Second); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := StaticFixes(rng, DefaultGPS(), geo.Point{}, 5, 0); err == nil {
		t.Fatal("zero interval must error")
	}
	if _, err := CalibrateR(make([]geo.Point, 3)); err == nil {
		t.Fatal("too few fixes must error")
	}
}

func TestRepeatRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tracks, err := RepeatRoute(rng, Options{
		Route:     cornerRoute(),
		Mode:      trajectory.ModeWalking,
		Start:     _t0,
		Interval:  time.Second,
		MaxPoints: 40,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 5 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	// Runs must differ from each other.
	same := 0
	for i := range tracks[0].Points {
		if tracks[0].Points[i].Fix == tracks[1].Points[i].Fix {
			same++
		}
	}
	if same > len(tracks[0].Points)/2 {
		t.Fatal("repetitions look identical")
	}
	if _, err := RepeatRoute(rng, Options{}, 0); err == nil {
		t.Fatal("n=0 must error")
	}
}

func TestProfileForCoversModes(t *testing.T) {
	for _, m := range trajectory.Modes() {
		p := ProfileFor(m)
		if p.Mode != m {
			t.Fatalf("profile mode %v != %v", p.Mode, m)
		}
		if p.CruiseSpeed <= 0 || p.MaxAccel <= 0 || p.MaxDecel <= 0 {
			t.Fatalf("degenerate profile for %v: %+v", m, p)
		}
	}
	// Unknown mode falls back to walking kinematics.
	if p := ProfileFor(trajectory.Mode(99)); p.CruiseSpeed != 1.4 {
		t.Fatal("unknown mode must fall back to walking")
	}
}

func distToPolyline(p geo.Point, line []geo.Point) float64 {
	best := math.Inf(1)
	for i := 1; i < len(line); i++ {
		if d := distToSegment(p, line[i-1], line[i]); d < best {
			best = d
		}
	}
	return best
}

func distToSegment(p, a, b geo.Point) float64 {
	ab := b.Sub(a)
	denom := ab.X*ab.X + ab.Y*ab.Y
	if denom == 0 {
		return geo.Dist(p, a)
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / denom
	t = math.Max(0, math.Min(1, t))
	return geo.Dist(p, geo.Lerp(a, b, t))
}
