package mobility

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
)

// allModes are the three concrete transport modes the city model mixes.
var allModes = []trajectory.Mode{
	trajectory.ModeWalking, trajectory.ModeCycling, trajectory.ModeDriving,
}

// TestSimulateBitIdenticalPerMode pins seed determinism for every mode the
// open-loop city model uses: same seed, same options → the same track to
// the last bit (true positions, noisy fixes, and timestamps alike). The
// workload digest of the load harness depends on this.
func TestSimulateBitIdenticalPerMode(t *testing.T) {
	for _, mode := range allModes {
		a := simulate(t, 77, mode, 50)
		b := simulate(t, 77, mode, 50)
		if len(a.Points) != len(b.Points) {
			t.Fatalf("%v: point counts differ: %d vs %d", mode, len(a.Points), len(b.Points))
		}
		for i := range a.Points {
			pa, pb := a.Points[i], b.Points[i]
			if pa.True != pb.True {
				t.Fatalf("%v: true pos diverged at %d: %v vs %v", mode, i, pa.True, pb.True)
			}
			if pa.Fix != pb.Fix {
				t.Fatalf("%v: fix diverged at %d: %v vs %v", mode, i, pa.Fix, pb.Fix)
			}
			if !pa.Time.Equal(pb.Time) {
				t.Fatalf("%v: timestamp diverged at %d: %v vs %v", mode, i, pa.Time, pb.Time)
			}
		}
	}
}

// longRoute is a 1.6 km two-corner course, long enough that driving does
// not run out of road inside the sampled window.
func longRoute() []geo.Point {
	return []geo.Point{{X: 0, Y: 0}, {X: 600, Y: 0}, {X: 600, Y: 500}, {X: 100, Y: 500}}
}

// TestSimulateRespectsProfileCaps is the distribution sanity check: for
// every mode, ground-truth speeds stay inside the OU envelope around the
// profile's cruise speed, speed changes respect the profile's
// acceleration/deceleration bounds, and the per-mode mean speeds order the
// way the profiles say they must.
func TestSimulateRespectsProfileCaps(t *testing.T) {
	// Cruise (p90) speed per mode; means include planned stops, so the
	// cruise quantile is what orders the modes.
	cruiseByMode := make(map[trajectory.Mode]float64)
	for _, mode := range allModes {
		prof := ProfileFor(mode)
		tk, err := Simulate(rand.New(rand.NewSource(83)), Options{
			Route: longRoute(), Mode: mode,
			Start: _t0, Interval: time.Second, MaxPoints: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		truths := tk.TruePositions()
		dt := 1.0
		speeds := make([]float64, 0, len(truths)-1)
		for i := 1; i < len(truths); i++ {
			speeds = append(speeds, geo.Dist(truths[i-1], truths[i])/dt)
		}
		// The speed process targets Cruise + an OU deviation with marginal
		// sd SpeedSD; 6 sd is far outside anything the integrator should
		// produce.
		ceil := prof.CruiseSpeed + 6*prof.SpeedSD
		sum := 0.0
		for i, v := range speeds {
			sum += v
			if v > ceil {
				t.Fatalf("%v: speed[%d] = %.2f m/s above envelope %.2f", mode, i, v, ceil)
			}
		}
		mean := sum / float64(len(speeds))
		if mean <= 0.15*prof.CruiseSpeed || mean > 1.4*prof.CruiseSpeed {
			t.Fatalf("%v: mean speed %.2f m/s implausible for cruise %.2f", mode, mean, prof.CruiseSpeed)
		}
		sorted := append([]float64(nil), speeds...)
		sort.Float64s(sorted)
		cruiseByMode[mode] = sorted[len(sorted)*9/10]
		// Interval-averaged speed changes cannot exceed the per-dt
		// acceleration bounds (25% slack for chord-vs-arc shortening
		// through turns).
		cap := math.Max(prof.MaxAccel, prof.MaxDecel) * 1.25
		for i := 1; i < len(speeds); i++ {
			if d := math.Abs(speeds[i]-speeds[i-1]) / dt; d > cap {
				t.Fatalf("%v: |dv|[%d] = %.2f m/s^2 above profile cap %.2f", mode, i, d, cap)
			}
		}
	}
	if !(cruiseByMode[trajectory.ModeWalking] < cruiseByMode[trajectory.ModeCycling] &&
		cruiseByMode[trajectory.ModeCycling] < cruiseByMode[trajectory.ModeDriving]) {
		t.Fatalf("mode cruise-speed ordering violated: %v", cruiseByMode)
	}
}

// TestSimulateSlowsForSharpTurns pins the turn-speed cap: a driving track
// must pass close to a right-angle corner well below cruise speed.
func TestSimulateSlowsForSharpTurns(t *testing.T) {
	prof := ProfileFor(trajectory.ModeDriving)
	tk, err := Simulate(rand.New(rand.NewSource(97)), Options{
		Route: longRoute(), Mode: trajectory.ModeDriving,
		Start: _t0, Interval: time.Second, MaxPoints: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	corner := geo.Point{X: 600, Y: 0}
	truths := tk.TruePositions()
	minNear := math.Inf(1)
	for i := 1; i < len(truths); i++ {
		if geo.Dist(truths[i], corner) > 20 {
			continue
		}
		if v := geo.Dist(truths[i-1], truths[i]); v < minNear {
			minNear = v
		}
	}
	if math.IsInf(minNear, 1) {
		t.Fatal("track never came within 20 m of the corner")
	}
	if minNear > prof.TurnSpeed*2 {
		t.Fatalf("corner speed %.2f m/s, want ≤ %.2f (turn cap %.2f with slack)",
			minNear, prof.TurnSpeed*2, prof.TurnSpeed)
	}
}
