// Package mobility simulates real human movement along planned routes and
// the GPS receiver observing it. It is the substitute for the paper's
// OSM/GeoLife-style corpus of real trajectories: the classifiers only ever
// see motion features, so what matters is that the simulator reproduces the
// statistical signatures of genuine movement — smooth accelerations,
// mode-specific speed processes, pauses, turn slow-downs, lateral wander
// within the roadway, and autocorrelated GPS error — which is exactly what
// the naive fakes of Sec. IV-A2 lack.
//
// The simulator integrates a longitudinal speed process along a route
// polyline at a fine internal time step and records fixes at the requested
// sampling interval, returning both the ground-truth positions (used by the
// WiFi propagation simulator) and the GPS fixes (what the client uploads).
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/stats"
	"trajforge/internal/trajectory"
)

// Profile holds the kinematic parameters of a transportation mode.
type Profile struct {
	Mode trajectory.Mode
	// CruiseSpeed is the mean preferred speed in m/s.
	CruiseSpeed float64
	// SpeedSD is the stationary standard deviation of the speed process.
	SpeedSD float64
	// SpeedRho is the 1-second autocorrelation of the speed process.
	SpeedRho float64
	// MaxAccel and MaxDecel bound speed changes in m/s^2 (both positive).
	MaxAccel, MaxDecel float64
	// TurnSpeed is the speed the agent slows to for sharp turns.
	TurnSpeed float64
	// StopRatePerMeter is the expected number of en-route stops per metre
	// (signals, crossings, rests).
	StopRatePerMeter float64
	// StopMin, StopMax bound the stop duration in seconds.
	StopMin, StopMax float64
	// LateralSD is the standard deviation of the slowly varying lateral
	// offset from the route centreline in metres (pavement wander, lane
	// position, overtaking).
	LateralSD float64
	// LateralRho is the per-second autocorrelation of the lateral offset.
	LateralRho float64
}

// ProfileFor returns the default profile of a mode.
func ProfileFor(mode trajectory.Mode) Profile {
	switch mode {
	case trajectory.ModeCycling:
		return Profile{
			Mode:        trajectory.ModeCycling,
			CruiseSpeed: 4.2, SpeedSD: 0.7, SpeedRho: 0.92,
			MaxAccel: 1.0, MaxDecel: 1.8,
			TurnSpeed:        2.0,
			StopRatePerMeter: 1.0 / 400,
			StopMin:          3, StopMax: 25,
			LateralSD: 1.3, LateralRho: 0.97,
		}
	case trajectory.ModeDriving:
		return Profile{
			Mode:        trajectory.ModeDriving,
			CruiseSpeed: 11.5, SpeedSD: 2.2, SpeedRho: 0.95,
			MaxAccel: 2.2, MaxDecel: 3.5,
			TurnSpeed:        4.5,
			StopRatePerMeter: 1.0 / 350,
			StopMin:          5, StopMax: 45,
			LateralSD: 1.1, LateralRho: 0.98,
		}
	default:
		return Profile{
			Mode:        trajectory.ModeWalking,
			CruiseSpeed: 1.4, SpeedSD: 0.22, SpeedRho: 0.90,
			MaxAccel: 0.8, MaxDecel: 1.2,
			TurnSpeed:        0.9,
			StopRatePerMeter: 1.0 / 250,
			StopMin:          2, StopMax: 15,
			LateralSD: 0.9, LateralRho: 0.96,
		}
	}
}

// GPSModel describes the receiver error process. The paper measures the
// static positioning error as unilateral normal with R = 6σ = 3 m, i.e.
// σ = 0.5 m per axis; real receivers drift slowly, so the error is a 2-D
// Gauss-Markov process plus a small white component.
type GPSModel struct {
	// BiasSD is the stationary per-axis standard deviation of the slowly
	// drifting error component in metres.
	BiasSD float64
	// BiasRho is the 1-second autocorrelation of the drifting component.
	BiasRho float64
	// WhiteSD is the per-fix white error standard deviation in metres.
	WhiteSD float64
}

// DefaultGPS returns the error model calibrated to the paper (σ = 0.5 m).
func DefaultGPS() GPSModel {
	return GPSModel{BiasSD: 0.45, BiasRho: 0.93, WhiteSD: 0.12}
}

// TrackPoint pairs the ground-truth position with the GPS fix observed
// there.
type TrackPoint struct {
	True geo.Point
	Fix  geo.Point
	Time time.Time
}

// Track is the full simulator output.
type Track struct {
	Points []TrackPoint
	Mode   trajectory.Mode
}

// Trajectory converts the GPS fixes to the upload-format trajectory.
func (tk *Track) Trajectory() *trajectory.T {
	t := &trajectory.T{Mode: tk.Mode, Points: make([]trajectory.Point, len(tk.Points))}
	for i, p := range tk.Points {
		t.Points[i] = trajectory.Point{Pos: p.Fix, Time: p.Time}
	}
	return t
}

// TruePositions returns the ground-truth position sequence.
func (tk *Track) TruePositions() []geo.Point {
	out := make([]geo.Point, len(tk.Points))
	for i, p := range tk.Points {
		out[i] = p.True
	}
	return out
}

// Options configures one simulation run.
type Options struct {
	// Route is the centreline polyline to follow.
	Route []geo.Point
	// Profile holds the kinematics; zero value means ProfileFor(Mode).
	Profile Profile
	// Mode is used when Profile is zero.
	Mode trajectory.Mode
	// GPS is the receiver model; zero value means DefaultGPS().
	GPS GPSModel
	// Start is the timestamp of the first fix.
	Start time.Time
	// Interval is the fix sampling interval (must be positive).
	Interval time.Duration
	// MaxPoints stops the simulation after this many fixes; <= 0 means run
	// until the route ends.
	MaxPoints int
}

// internal integration step.
const _dt = 0.1 // seconds

// Simulate runs one agent along the route and returns its track.
func Simulate(rng *rand.Rand, opts Options) (*Track, error) {
	if len(opts.Route) < 2 {
		return nil, fmt.Errorf("mobility: route needs >= 2 points, got %d", len(opts.Route))
	}
	if opts.Interval <= 0 {
		return nil, fmt.Errorf("mobility: interval %v must be positive", opts.Interval)
	}
	prof := opts.Profile
	if prof.CruiseSpeed == 0 {
		prof = ProfileFor(opts.Mode)
	}
	gps := opts.GPS
	if gps.BiasSD == 0 && gps.WhiteSD == 0 {
		gps = DefaultGPS()
	}
	routeLen := geo.PolylineLength(opts.Route)
	if routeLen <= 0 {
		return nil, fmt.Errorf("mobility: degenerate route of length 0")
	}

	// Pre-plan stop events by arc length.
	stops := planStops(rng, prof, routeLen)

	// Discount rho values from per-second to per-dt.
	speedRho := math.Pow(prof.SpeedRho, _dt)
	latRho := math.Pow(prof.LateralRho, _dt)
	biasRho := math.Pow(gps.BiasRho, _dt)

	speedInnov := prof.SpeedSD * math.Sqrt(1-speedRho*speedRho)
	latInnov := prof.LateralSD * math.Sqrt(1-latRho*latRho)
	biasInnov := gps.BiasSD * math.Sqrt(1-biasRho*biasRho)

	// State.
	dist := 0.0
	v := math.Max(0.3, prof.CruiseSpeed*(0.5+rng.Float64()*0.3)) // start below cruise
	speedDev := stats.Normal(rng, 0, prof.SpeedSD)
	lat := stats.Normal(rng, 0, prof.LateralSD)
	biasX := stats.Normal(rng, 0, gps.BiasSD)
	biasY := stats.Normal(rng, 0, gps.BiasSD)
	stopRemaining := 0.0
	nextStop := 0

	interval := opts.Interval.Seconds()
	tk := &Track{Mode: prof.Mode}
	elapsed := 0.0
	nextSample := 0.0

	record := func() {
		truePos := offsetPosition(opts.Route, dist, lat)
		fix := geo.Point{X: truePos.X + biasX + stats.Normal(rng, 0, gps.WhiteSD),
			Y: truePos.Y + biasY + stats.Normal(rng, 0, gps.WhiteSD)}
		// Round to the millisecond so the fixed-dt float accumulation does
		// not leak 1 ms jitter into the recorded timestamps.
		ms := math.Round(elapsed * 1000)
		tk.Points = append(tk.Points, TrackPoint{
			True: truePos,
			Fix:  fix,
			Time: opts.Start.Add(time.Duration(ms) * time.Millisecond),
		})
	}

	maxSteps := int(4 * (routeLen/math.Max(0.5, prof.CruiseSpeed) + 600) / _dt)
	for step := 0; step < maxSteps; step++ {
		if elapsed >= nextSample-1e-9 {
			record()
			nextSample += interval
			if opts.MaxPoints > 0 && len(tk.Points) >= opts.MaxPoints {
				break
			}
		}
		if dist >= routeLen {
			break
		}

		// Trigger a planned stop when its arc position is crossed.
		if nextStop < len(stops) && dist >= stops[nextStop].at {
			stopRemaining = stops[nextStop].duration
			nextStop++
		}

		// Target speed: OU deviation around cruise, limited by turns ahead.
		speedDev = speedRho*speedDev + stats.Normal(rng, 0, speedInnov)
		target := math.Max(0.2, prof.CruiseSpeed+speedDev)
		if limit := turnLimit(opts.Route, dist, v, prof); limit < target {
			target = limit
		}
		if stopRemaining > 0 {
			target = 0
			stopRemaining -= _dt
		}

		// Accelerate toward target under the profile's limits.
		dv := target - v
		maxUp := prof.MaxAccel * _dt
		maxDown := prof.MaxDecel * _dt
		if dv > maxUp {
			dv = maxUp
		} else if dv < -maxDown {
			dv = -maxDown
		}
		v += dv
		if v < 0 {
			v = 0
		}

		dist += v * _dt
		lat = latRho*lat + stats.Normal(rng, 0, latInnov)
		biasX = biasRho*biasX + stats.Normal(rng, 0, biasInnov)
		biasY = biasRho*biasY + stats.Normal(rng, 0, biasInnov)
		elapsed += _dt
	}
	if len(tk.Points) < 2 {
		return nil, fmt.Errorf("mobility: simulation produced %d fixes", len(tk.Points))
	}
	return tk, nil
}

type stopEvent struct {
	at       float64 // arc length, metres
	duration float64 // seconds
}

// planStops draws Poisson-ish stop events along the route.
func planStops(rng *rand.Rand, prof Profile, routeLen float64) []stopEvent {
	if prof.StopRatePerMeter <= 0 {
		return nil
	}
	var out []stopEvent
	// Exponential gaps between stops.
	at := rng.ExpFloat64() / prof.StopRatePerMeter
	for at < routeLen {
		dur := prof.StopMin + rng.Float64()*(prof.StopMax-prof.StopMin)
		out = append(out, stopEvent{at: at, duration: dur})
		at += rng.ExpFloat64() / prof.StopRatePerMeter
	}
	return out
}

// turnLimit returns the speed allowed by upcoming route curvature. It looks
// ahead over the braking distance and lowers the cap near sharp corners.
func turnLimit(route []geo.Point, dist, v float64, prof Profile) float64 {
	braking := v * v / (2 * math.Max(0.1, prof.MaxDecel))
	lookahead := math.Max(3, braking+2)

	here := geo.PointAlong(route, dist)
	ahead1 := geo.PointAlong(route, dist+lookahead/2)
	ahead2 := geo.PointAlong(route, dist+lookahead)
	h1 := geo.Bearing(here, ahead1)
	h2 := geo.Bearing(ahead1, ahead2)
	turn := math.Abs(geo.AngleDiff(h2, h1))
	if turn < 0.3 {
		return math.Inf(1)
	}
	// Interpolate between full speed and TurnSpeed as the turn sharpens.
	frac := math.Min(1, (turn-0.3)/1.2)
	return prof.CruiseSpeed*(1-frac) + prof.TurnSpeed*frac
}

// offsetPosition returns the point at arc length dist shifted laterally
// (perpendicular to the local heading) by lat metres.
func offsetPosition(route []geo.Point, dist, lat float64) geo.Point {
	p := geo.PointAlong(route, dist)
	// Local heading from a short chord.
	a := geo.PointAlong(route, math.Max(0, dist-1))
	b := geo.PointAlong(route, dist+1)
	h := geo.Bearing(a, b)
	// Perpendicular (rotate heading by +90 degrees).
	return geo.Point{X: p.X - math.Sin(h)*lat, Y: p.Y + math.Cos(h)*lat}
}
