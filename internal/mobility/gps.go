package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/stats"
)

// StaticFixes simulates a stationary receiver at pos collecting n GPS fixes
// at the given interval — the experiment the paper runs ("we collect over
// 500 GPS coordinates at the same position") to calibrate the maximum
// position deviation R.
func StaticFixes(rng *rand.Rand, gps GPSModel, pos geo.Point, n int, interval time.Duration) ([]geo.Point, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need n > 0 fixes, got %d", n)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("mobility: interval %v must be positive", interval)
	}
	rho := math.Pow(gps.BiasRho, interval.Seconds())
	innov := gps.BiasSD * math.Sqrt(1-rho*rho)
	bx := stats.Normal(rng, 0, gps.BiasSD)
	by := stats.Normal(rng, 0, gps.BiasSD)
	out := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		out[i] = geo.Point{
			X: pos.X + bx + stats.Normal(rng, 0, gps.WhiteSD),
			Y: pos.Y + by + stats.Normal(rng, 0, gps.WhiteSD),
		}
		bx = rho*bx + stats.Normal(rng, 0, innov)
		by = rho*by + stats.Normal(rng, 0, innov)
	}
	return out, nil
}

// RCalibration is the result of the paper's R determination experiment.
type RCalibration struct {
	// Sigma is the estimated scale of the unilateral normal distribution of
	// the distance between a fix and the mean position.
	Sigma float64
	// R is the maximum position deviation 6*Sigma.
	R float64
	// MeanPos is the estimated true position (average of all fixes).
	MeanPos geo.Point
	// N is the number of fixes used.
	N int
}

// CalibrateR reproduces Sec. III-C: take the average coordinate as the true
// position, model the distance d of each fix from it as unilateral normal
// d ~ |N(0, σ²)|, estimate σ, and return R = 6σ.
func CalibrateR(fixes []geo.Point) (RCalibration, error) {
	if len(fixes) < 10 {
		return RCalibration{}, fmt.Errorf("mobility: need >= 10 fixes to calibrate R, got %d", len(fixes))
	}
	var mean geo.Point
	for _, p := range fixes {
		mean.X += p.X
		mean.Y += p.Y
	}
	mean.X /= float64(len(fixes))
	mean.Y /= float64(len(fixes))

	// For d = |x| with x ~ N(0, σ²) in 2-D radial form we estimate σ from
	// E[d²] = 2σ² (two axes each contributing σ²).
	var sumSq float64
	for _, p := range fixes {
		sumSq += geo.Dist2(p, mean)
	}
	sigma := math.Sqrt(sumSq / (2 * float64(len(fixes))))
	return RCalibration{Sigma: sigma, R: 6 * sigma, MeanPos: mean, N: len(fixes)}, nil
}

// RepeatRoute simulates the same route n times with independent randomness,
// as in the paper's MinD experiment ("we walked a 200 m route continuously
// 50 times"). All runs share the route and profile but differ in speed
// processes, stops, lateral wander, and GPS error.
func RepeatRoute(rng *rand.Rand, opts Options, n int) ([]*Track, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need n > 0 repetitions, got %d", n)
	}
	out := make([]*Track, 0, n)
	for i := 0; i < n; i++ {
		tk, err := Simulate(rng, opts)
		if err != nil {
			return nil, fmt.Errorf("mobility: repetition %d: %w", i, err)
		}
		out = append(out, tk)
	}
	return out, nil
}
