// Package roadnet generates and represents synthetic urban road networks.
// The paper's navigation attack plans routes on a commercial map (Amap);
// this package is the offline substitute: a deterministic, seeded generator
// produces a perturbed-grid street network with typed roads (footways,
// streets, arterials), intersection nodes, and per-edge speed limits, over
// which internal/routing plans walking/cycling/driving routes.
package roadnet

import (
	"fmt"
	"math/rand"

	"trajforge/internal/geo"
)

// RoadClass describes the type of a road edge.
type RoadClass int

// Road classes, from smallest to largest.
const (
	ClassFootway RoadClass = iota + 1
	ClassStreet
	ClassArterial
)

func (c RoadClass) String() string {
	switch c {
	case ClassFootway:
		return "footway"
	case ClassStreet:
		return "street"
	case ClassArterial:
		return "arterial"
	default:
		return fmt.Sprintf("RoadClass(%d)", int(c))
	}
}

// Node is a road-network vertex (an intersection or endpoint).
type Node struct {
	ID  int
	Pos geo.Point
}

// Edge is a directed road segment between two nodes. Every generated edge
// has a twin in the opposite direction.
type Edge struct {
	ID     int
	From   int
	To     int
	Class  RoadClass
	Length float64 // metres
	// SpeedLimit is the legal driving speed in m/s; walking and cycling
	// speeds are capped by mode profiles instead.
	SpeedLimit float64
	// Signalized reports whether the To-end intersection has a traffic
	// light (drivers may need to stop there).
	Signalized bool
}

// Graph is a road network.
type Graph struct {
	nodes []Node
	edges []Edge
	adj   [][]int // node ID -> outgoing edge IDs
	// width, height of the covered area in metres.
	width, height float64
}

// Nodes returns the node list (shared storage; callers must not modify).
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns the edge list (shared storage; callers must not modify).
func (g *Graph) Edges() []Edge { return g.edges }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Out returns the outgoing edge IDs of node id.
func (g *Graph) Out(id int) []int { return g.adj[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Size returns the width and height of the covered area in metres.
func (g *Graph) Size() (w, h float64) { return g.width, g.height }

// NearestNode returns the ID of the node closest to p.
func (g *Graph) NearestNode(p geo.Point) int {
	best := 0
	bestD := geo.Dist2(p, g.nodes[0].Pos)
	for _, n := range g.nodes[1:] {
		if d := geo.Dist2(p, n.Pos); d < bestD {
			best = n.ID
			bestD = d
		}
	}
	return best
}

// Config controls network generation.
type Config struct {
	// Width, Height of the area in metres.
	Width, Height float64
	// BlockSize is the nominal distance between parallel streets in metres.
	BlockSize float64
	// Jitter perturbs intersection positions by up to this many metres so
	// the grid looks organic and headings vary.
	Jitter float64
	// ArterialEvery makes every k-th row/column an arterial road (0
	// disables arterials).
	ArterialEvery int
	// DropProb removes this fraction of interior edges, creating dead ends
	// and detours (routes become non-trivial). Connectivity is restored by
	// keeping a spanning structure.
	DropProb float64
	// SignalProb is the probability that an intersection is signalized.
	SignalProb float64
}

// DefaultConfig returns a config resembling a dense commercial district.
func DefaultConfig() Config {
	return Config{
		Width:         800,
		Height:        600,
		BlockSize:     80,
		Jitter:        12,
		ArterialEvery: 4,
		DropProb:      0.12,
		SignalProb:    0.35,
	}
}

// Generate builds a road network from cfg using rng. The same seed yields
// the same network.
func Generate(rng *rand.Rand, cfg Config) (*Graph, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("roadnet: area %gx%g must be positive", cfg.Width, cfg.Height)
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("roadnet: block size %g must be positive", cfg.BlockSize)
	}
	cols := int(cfg.Width/cfg.BlockSize) + 1
	rows := int(cfg.Height/cfg.BlockSize) + 1
	if cols < 2 || rows < 2 {
		return nil, fmt.Errorf("roadnet: area %gx%g too small for block size %g",
			cfg.Width, cfg.Height, cfg.BlockSize)
	}

	g := &Graph{width: cfg.Width, height: cfg.Height}
	signal := make([]bool, 0, rows*cols)

	// Lay out jittered grid intersections.
	id := 0
	nodeAt := make([][]int, rows)
	for r := 0; r < rows; r++ {
		nodeAt[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter
			jy := (rng.Float64()*2 - 1) * cfg.Jitter
			pos := geo.Point{
				X: clamp(float64(c)*cfg.BlockSize+jx, 0, cfg.Width),
				Y: clamp(float64(r)*cfg.BlockSize+jy, 0, cfg.Height),
			}
			g.nodes = append(g.nodes, Node{ID: id, Pos: pos})
			signal = append(signal, rng.Float64() < cfg.SignalProb)
			nodeAt[r][c] = id
			id++
		}
	}

	isArterial := func(rc int) bool {
		return cfg.ArterialEvery > 0 && rc%cfg.ArterialEvery == 0
	}
	classFor := func(rowRoad bool, index int) RoadClass {
		if isArterial(index) {
			return ClassArterial
		}
		// Alternate small streets and footways on non-arterial roads.
		if index%2 == 1 {
			return ClassStreet
		}
		if rowRoad {
			return ClassStreet
		}
		return ClassFootway
	}

	// Candidate undirected edges along rows and columns.
	type cand struct {
		a, b  int
		class RoadClass
		keep  bool // spanning edges are never dropped
	}
	cands := make([]cand, 0, rows*cols*2)
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			// Horizontal edges of row r: keep row 0 as part of the spanning
			// comb so the graph stays connected after drops.
			cands = append(cands, cand{
				a: nodeAt[r][c], b: nodeAt[r][c+1],
				class: classFor(true, r),
				keep:  r == 0,
			})
		}
	}
	for c := 0; c < cols; c++ {
		for r := 0; r+1 < rows; r++ {
			// All vertical edges are spanning (comb teeth).
			cands = append(cands, cand{
				a: nodeAt[r][c], b: nodeAt[r+1][c],
				class: classFor(false, c),
				keep:  true,
			})
		}
	}

	g.adj = make([][]int, len(g.nodes))
	addEdge := func(a, b int, class RoadClass) {
		length := geo.Dist(g.nodes[a].Pos, g.nodes[b].Pos)
		limit := speedLimit(class)
		for _, dir := range [2][2]int{{a, b}, {b, a}} {
			e := Edge{
				ID:         len(g.edges),
				From:       dir[0],
				To:         dir[1],
				Class:      class,
				Length:     length,
				SpeedLimit: limit,
				Signalized: signal[dir[1]],
			}
			g.edges = append(g.edges, e)
			g.adj[dir[0]] = append(g.adj[dir[0]], e.ID)
		}
	}
	for _, cd := range cands {
		if !cd.keep && rng.Float64() < cfg.DropProb {
			continue
		}
		addEdge(cd.a, cd.b, cd.class)
	}
	return g, nil
}

// speedLimit returns the driving speed limit in m/s for a road class.
func speedLimit(c RoadClass) float64 {
	switch c {
	case ClassArterial:
		return 16.7 // 60 km/h
	case ClassStreet:
		return 11.1 // 40 km/h
	default:
		return 4.0 // footways: drivers excluded, cap for completeness
	}
}

// Allows reports whether a road class is usable by the given mode index
// semantics used by routing: walking uses everything, cycling skips
// arterial-only restrictions (none here), driving cannot use footways.
func Allows(c RoadClass, driving bool) bool {
	if driving {
		return c != ClassFootway
	}
	return true
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
