package roadnet

import (
	"math/rand"
	"testing"

	"trajforge/internal/geo"
)

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(rng, Config{Width: 0, Height: 100, BlockSize: 10}); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := Generate(rng, Config{Width: 100, Height: 100, BlockSize: 0}); err == nil {
		t.Fatal("zero block size must error")
	}
	if _, err := Generate(rng, Config{Width: 5, Height: 5, BlockSize: 100}); err == nil {
		t.Fatal("area smaller than one block must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	g1, err := Generate(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			g1.NumNodes(), g1.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	for i := range g1.Nodes() {
		if g1.Node(i).Pos != g2.Node(i).Pos {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestGraphStructure(t *testing.T) {
	g, err := Generate(rand.New(rand.NewSource(3)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 50 {
		t.Fatalf("too few nodes: %d", g.NumNodes())
	}
	// Every edge must have a reverse twin and positive length.
	reverse := make(map[[2]int]bool, g.NumEdges())
	for _, e := range g.Edges() {
		reverse[[2]int{e.From, e.To}] = true
	}
	for _, e := range g.Edges() {
		if !reverse[[2]int{e.To, e.From}] {
			t.Fatalf("edge %d has no reverse twin", e.ID)
		}
		if e.Length <= 0 {
			t.Fatalf("edge %d has non-positive length %v", e.ID, e.Length)
		}
		if e.SpeedLimit <= 0 {
			t.Fatalf("edge %d has non-positive speed limit", e.ID)
		}
		if e.From == e.To {
			t.Fatalf("edge %d is a self-loop", e.ID)
		}
	}
	// Adjacency must be consistent with edges.
	for nid := 0; nid < g.NumNodes(); nid++ {
		for _, eid := range g.Out(nid) {
			if g.Edge(eid).From != nid {
				t.Fatalf("adjacency of node %d lists edge %d with From=%d", nid, eid, g.Edge(eid).From)
			}
		}
	}
	// Nodes must be inside the area.
	w, h := g.Size()
	for _, n := range g.Nodes() {
		if n.Pos.X < 0 || n.Pos.X > w || n.Pos.Y < 0 || n.Pos.Y > h {
			t.Fatalf("node %d at %v escapes %gx%g", n.ID, n.Pos, w, h)
		}
	}
}

func TestGraphConnectivity(t *testing.T) {
	// Even with aggressive edge dropping, the spanning comb keeps the
	// walking graph connected.
	cfg := DefaultConfig()
	cfg.DropProb = 0.5
	g, err := Generate(rand.New(rand.NewSource(11)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.NumNodes())
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, eid := range g.Out(n) {
			to := g.Edge(eid).To
			if !seen[to] {
				seen[to] = true
				count++
				queue = append(queue, to)
			}
		}
	}
	if count != g.NumNodes() {
		t.Fatalf("graph disconnected: reached %d of %d nodes", count, g.NumNodes())
	}
}

func TestNearestNode(t *testing.T) {
	g, err := Generate(rand.New(rand.NewSource(5)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []Node{g.Node(0), g.Node(g.NumNodes() / 2), g.Node(g.NumNodes() - 1)} {
		got := g.NearestNode(n.Pos)
		if geo.Dist(g.Node(got).Pos, n.Pos) > 1e-9 && got != n.ID {
			t.Fatalf("NearestNode(%v) = %d, want %d", n.Pos, got, n.ID)
		}
	}
}

func TestRoadClassProperties(t *testing.T) {
	if ClassFootway.String() != "footway" || ClassStreet.String() != "street" ||
		ClassArterial.String() != "arterial" {
		t.Fatal("class names wrong")
	}
	if RoadClass(0).String() == "" {
		t.Fatal("unknown class must format")
	}
	if !Allows(ClassFootway, false) || Allows(ClassFootway, true) {
		t.Fatal("footway permissions wrong")
	}
	if !Allows(ClassArterial, true) {
		t.Fatal("arterial must allow driving")
	}
}

func TestArterialsExist(t *testing.T) {
	g, err := Generate(rand.New(rand.NewSource(2)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[RoadClass]int{}
	for _, e := range g.Edges() {
		counts[e.Class]++
	}
	for _, c := range []RoadClass{ClassFootway, ClassStreet, ClassArterial} {
		if counts[c] == 0 {
			t.Fatalf("no edges of class %v generated", c)
		}
	}
	// Arterials must be faster than streets.
	if speedLimit(ClassArterial) <= speedLimit(ClassStreet) {
		t.Fatal("arterial speed must exceed street speed")
	}
}
