package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"trajforge/internal/geo"
)

func TestEdgeIndexMatchesBruteForce(t *testing.T) {
	g, err := Generate(rand.New(rand.NewSource(5)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := NewEdgeIndex(g, 50)

	brute := func(p geo.Point) float64 {
		best := math.Inf(1)
		for _, e := range g.Edges() {
			d := distToSegment(p, g.Node(e.From).Pos, g.Node(e.To).Pos)
			if d < best {
				best = d
			}
		}
		return best
	}

	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		p := geo.Point{X: rng.Float64()*900 - 50, Y: rng.Float64()*700 - 50}
		got := idx.DistanceToRoad(p)
		want := brute(p)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("DistanceToRoad(%v) = %v, brute force %v", p, got, want)
		}
	}
}

func TestEdgeIndexOnRoadIsZero(t *testing.T) {
	g, err := Generate(rand.New(rand.NewSource(7)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := NewEdgeIndex(g, 50)
	// Node positions are on the network by definition.
	for i := 0; i < g.NumNodes(); i += 7 {
		if d := idx.DistanceToRoad(g.Node(i).Pos); d > 1e-9 {
			t.Fatalf("node %d is %v m from the network", i, d)
		}
	}
}

func TestEdgeIndexDefaultCell(t *testing.T) {
	g, err := Generate(rand.New(rand.NewSource(8)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := NewEdgeIndex(g, 0) // falls back to default cell
	if d := idx.DistanceToRoad(geo.Point{X: 400, Y: 300}); math.IsInf(d, 1) {
		t.Fatal("default-cell index found nothing")
	}
}

func TestEdgeIndexFarPoint(t *testing.T) {
	g, err := Generate(rand.New(rand.NewSource(9)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx := NewEdgeIndex(g, 50)
	d := idx.DistanceToRoad(geo.Point{X: 5000, Y: 5000})
	if math.IsInf(d, 1) || d < 1000 {
		t.Fatalf("far point distance = %v", d)
	}
}
