package roadnet

import (
	"math"

	"trajforge/internal/geo"
)

// EdgeIndex answers nearest-road queries over a graph: the distance from a
// position to the closest road segment. The paper's "route rationality"
// requirement — a trajectory projected to the map should match a reasonable
// route — reduces to points staying near the road network, which is what a
// provider can check cheaply before any learning-based verification.
type EdgeIndex struct {
	g    *Graph
	cell float64
	grid map[[2]int][]int32 // cell -> edge IDs overlapping it
}

// NewEdgeIndex builds the index with the given cell size (metres); cell
// sizes around one block width work well. Non-positive cell sizes fall back
// to 50 m.
func NewEdgeIndex(g *Graph, cell float64) *EdgeIndex {
	if cell <= 0 {
		cell = 50
	}
	idx := &EdgeIndex{g: g, cell: cell, grid: make(map[[2]int][]int32)}
	for _, e := range g.Edges() {
		if e.From > e.To {
			continue // index each undirected pair once
		}
		a := g.Node(e.From).Pos
		b := g.Node(e.To).Pos
		idx.addSegment(int32(e.ID), a, b)
	}
	return idx
}

// addSegment registers the edge in every cell its bounding box touches.
func (idx *EdgeIndex) addSegment(id int32, a, b geo.Point) {
	minX := int(math.Floor(math.Min(a.X, b.X) / idx.cell))
	maxX := int(math.Floor(math.Max(a.X, b.X) / idx.cell))
	minY := int(math.Floor(math.Min(a.Y, b.Y) / idx.cell))
	maxY := int(math.Floor(math.Max(a.Y, b.Y) / idx.cell))
	for cx := minX; cx <= maxX; cx++ {
		for cy := minY; cy <= maxY; cy++ {
			key := [2]int{cx, cy}
			idx.grid[key] = append(idx.grid[key], id)
		}
	}
}

// DistanceToRoad returns the distance from p to the nearest road segment.
// The search widens ring by ring until a hit is found; it always terminates
// because the graph has at least one edge.
func (idx *EdgeIndex) DistanceToRoad(p geo.Point) float64 {
	cx := int(math.Floor(p.X / idx.cell))
	cy := int(math.Floor(p.Y / idx.cell))
	best := math.Inf(1)
	// Upper bound on the rings that can possibly matter: from p to the far
	// corner of the covered area.
	w, h := idx.g.Size()
	reach := math.Hypot(math.Max(math.Abs(p.X), math.Abs(p.X-w)),
		math.Max(math.Abs(p.Y), math.Abs(p.Y-h)))
	maxRing := int(reach/idx.cell) + 2
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, one extra ring guarantees correctness
		// (a nearer segment can live at most one ring further out).
		if !math.IsInf(best, 1) && float64(ring-1)*idx.cell > best {
			return best
		}
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue // interior cells already visited
				}
				for _, id := range idx.grid[[2]int{cx + dx, cy + dy}] {
					e := idx.g.Edge(int(id))
					d := distToSegment(p, idx.g.Node(e.From).Pos, idx.g.Node(e.To).Pos)
					if d < best {
						best = d
					}
				}
			}
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// distToSegment returns the distance from p to segment ab.
func distToSegment(p, a, b geo.Point) float64 {
	ab := b.Sub(a)
	denom := ab.X*ab.X + ab.Y*ab.Y
	if denom == 0 {
		return geo.Dist(p, a)
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / denom
	t = math.Max(0, math.Min(1, t))
	return geo.Dist(p, geo.Lerp(a, b, t))
}
