// Package detect implements the server-side detectors evaluated in the
// paper: the motion-feature classifiers of Sec. IV-A (the LSTM target model
// C, the transfer models LSTM-1 and LSTM-2, and the XGBoost motion
// classifier), the simple DTW replay check, and the WiFi-RSSI detector of
// Sec. III (crowdsourced confidence features + XGBoost).
package detect

import (
	"fmt"

	"trajforge/internal/dtw"
	"trajforge/internal/geo"
	"trajforge/internal/nn"
	"trajforge/internal/parallel"
	"trajforge/internal/stats"
	"trajforge/internal/trajectory"
	"trajforge/internal/xgb"
)

// MotionDetector is any classifier that labels a bare trajectory.
type MotionDetector interface {
	// Name identifies the detector in reports ("C", "XGBoost", ...).
	Name() string
	// ProbReal returns the detector's P(real | trajectory).
	ProbReal(t *trajectory.T) float64
}

// IsFake applies the 0.5 threshold.
func IsFake(d MotionDetector, t *trajectory.T) bool { return d.ProbReal(t) < 0.5 }

// LSTMDetector wraps an nn.Classifier over a feature encoding.
type LSTMDetector struct {
	DetectorName string
	Model        *nn.Classifier
	Kind         trajectory.FeatureKind
}

var _ MotionDetector = (*LSTMDetector)(nil)

// Name implements MotionDetector.
func (d *LSTMDetector) Name() string { return d.DetectorName }

// ProbReal implements MotionDetector.
func (d *LSTMDetector) ProbReal(t *trajectory.T) float64 {
	return d.Model.Forward(trajectory.SequenceFeatures(t, d.Kind))
}

// XGBMotionDetector wraps an xgb.Model over the MotionSummary features of
// Sec. IV-A4.
type XGBMotionDetector struct {
	Model *xgb.Model
}

var _ MotionDetector = (*XGBMotionDetector)(nil)

// Name implements MotionDetector.
func (d *XGBMotionDetector) Name() string { return "XGBoost" }

// ProbReal implements MotionDetector. The underlying model is trained with
// label 1 = real.
func (d *XGBMotionDetector) ProbReal(t *trajectory.T) float64 {
	return d.Model.PredictProb(trajectory.Summarize(t).Vector())
}

// LSTMSpec describes one LSTM detector to train.
type LSTMSpec struct {
	Name   string
	Kind   trajectory.FeatureKind
	Hidden []int
	Seed   int64
	// MeanPool selects the time-averaged head (see nn.Config.MeanPool).
	MeanPool bool
	// Restarts > 1 trains multiple seeds and keeps the best (default 1).
	Restarts int
}

// PaperModels returns the four detector specs of Table I. The paper's
// target model C uses (dist, angle) features and one hidden layer; LSTM-1
// switches to raw (dx, dy); LSTM-2 adds a second hidden layer.
func PaperModels(hidden int) []LSTMSpec {
	return []LSTMSpec{
		{Name: "C", Kind: trajectory.FeatureDistAngle, Hidden: []int{hidden}, Seed: 11, MeanPool: true},
		{Name: "LSTM-1", Kind: trajectory.FeatureDxDy, Hidden: []int{hidden}, Seed: 12, MeanPool: true},
		{Name: "LSTM-2", Kind: trajectory.FeatureDistAngle, Hidden: []int{hidden, hidden}, Seed: 13, MeanPool: true},
	}
}

// TrainLSTM fits one LSTM detector on real/fake trajectory sets. When
// spec.Restarts > 1 it trains that many independently seeded models and
// keeps the one with the highest training-set accuracy — small-data LSTM
// training has high seed variance.
func TrainLSTM(spec LSTMSpec, real, fake []*trajectory.T, cfg nn.TrainConfig) (*LSTMDetector, error) {
	if len(real) == 0 || len(fake) == 0 {
		return nil, fmt.Errorf("detect: need both real (%d) and fake (%d) trajectories", len(real), len(fake))
	}
	samples := make([]nn.Sample, 0, len(real)+len(fake))
	for _, t := range real {
		samples = append(samples, nn.Sample{Seq: trajectory.SequenceFeatures(t, spec.Kind), Label: 1})
	}
	for _, t := range fake {
		samples = append(samples, nn.Sample{Seq: trajectory.SequenceFeatures(t, spec.Kind), Label: 0})
	}
	restarts := spec.Restarts
	if restarts < 1 {
		restarts = 1
	}
	var best *nn.Classifier
	bestAcc := -1.0
	for r := 0; r < restarts; r++ {
		model, err := nn.NewClassifier(nn.Config{
			InputDim: spec.Kind.Dim(), Hidden: spec.Hidden,
			Seed: spec.Seed + int64(1000*r), MeanPool: spec.MeanPool,
		})
		if err != nil {
			return nil, fmt.Errorf("detect: build %s: %w", spec.Name, err)
		}
		runCfg := cfg
		runCfg.Seed += int64(31 * r)
		if err := model.Train(samples, runCfg); err != nil {
			return nil, fmt.Errorf("detect: train %s: %w", spec.Name, err)
		}
		if acc := model.Evaluate(samples); acc > bestAcc {
			bestAcc = acc
			best = model
		}
	}
	return &LSTMDetector{DetectorName: spec.Name, Model: best, Kind: spec.Kind}, nil
}

// TrainXGBMotion fits the XGBoost motion detector.
func TrainXGBMotion(real, fake []*trajectory.T, cfg xgb.Config) (*XGBMotionDetector, error) {
	if len(real) == 0 || len(fake) == 0 {
		return nil, fmt.Errorf("detect: need both real (%d) and fake (%d) trajectories", len(real), len(fake))
	}
	X := make([][]float64, 0, len(real)+len(fake))
	y := make([]float64, 0, len(real)+len(fake))
	for _, t := range real {
		X = append(X, trajectory.Summarize(t).Vector())
		y = append(y, 1)
	}
	for _, t := range fake {
		X = append(X, trajectory.Summarize(t).Vector())
		y = append(y, 0)
	}
	model, err := xgb.Train(X, y, cfg)
	if err != nil {
		return nil, fmt.Errorf("detect: train XGBoost motion model: %w", err)
	}
	return &XGBMotionDetector{Model: model}, nil
}

// EvaluateMotion scores a detector on labelled sets, with "fake" as the
// positive class (the detector's job is to catch fakes). The per-trajectory
// classifications fan out across the worker pool — every MotionDetector in
// this package keeps its per-call state in an internal pool, so concurrent
// ProbReal calls are safe.
func EvaluateMotion(d MotionDetector, real, fake []*trajectory.T) stats.Confusion {
	realFake := parallel.Map(len(real), func(i int) bool { return IsFake(d, real[i]) })
	fakeFake := parallel.Map(len(fake), func(i int) bool { return IsFake(d, fake[i]) })
	var c stats.Confusion
	for _, isFake := range realFake {
		c.Observe(isFake, false)
	}
	for _, isFake := range fakeFake {
		c.Observe(isFake, true)
	}
	return c
}

// DetectionRate returns the fraction of the given fakes a detector catches
// (the paper's Table II metric). Classifications run in parallel.
func DetectionRate(d MotionDetector, fakes []*trajectory.T) float64 {
	if len(fakes) == 0 {
		return 0
	}
	caught := parallel.Map(len(fakes), func(i int) bool { return IsFake(d, fakes[i]) })
	var n int
	for _, hit := range caught {
		if hit {
			n++
		}
	}
	return float64(n) / float64(len(fakes))
}

// ReplayChecker is the server's trivial first line of defense: a new upload
// whose DTW distance to any historical trajectory falls below MinD (scaled
// by route length) is flagged as a replay. The C&W replay attack's loss2
// term exists precisely to defeat this check.
type ReplayChecker struct {
	minDPerMeter float64
	histories    [][]geo.Point
	lengths      []float64
	envelopes    []*dtw.Envelope
}

// NewReplayChecker builds a checker with the given MinD threshold (DTW per
// metre).
func NewReplayChecker(minDPerMeter float64) (*ReplayChecker, error) {
	if minDPerMeter <= 0 {
		return nil, fmt.Errorf("detect: MinD %g must be positive", minDPerMeter)
	}
	return &ReplayChecker{minDPerMeter: minDPerMeter}, nil
}

// AddHistory records a historical trajectory and precomputes its warping
// envelope for LB_Keogh pruning.
func (r *ReplayChecker) AddHistory(t *trajectory.T) {
	pos := t.Positions()
	r.histories = append(r.histories, pos)
	r.lengths = append(r.lengths, t.Length())
	r.envelopes = append(r.envelopes, dtw.NewEnvelope(pos, len(pos)/4+2))
}

// IsReplay reports whether the upload is suspiciously close to any
// historical record. The DTW search is banded for speed; the band is wide
// enough (a quarter of the sequence) that genuine replays cannot hide.
// The MinD threshold is normalised by the *historical* route length — the
// same normalisation the MinD calibration uses, and one an attacker cannot
// inflate by padding the uploaded trajectory.
// Histories are pre-filtered with the LB_Keogh lower bound: when the bound
// already exceeds the threshold, the full quadratic DTW is skipped — the
// scan over a large provider history touches most records only linearly.
func (r *ReplayChecker) IsReplay(t *trajectory.T) bool {
	pos := t.Positions()
	window := len(pos)/4 + 2
	for i, hist := range r.histories {
		threshold := r.minDPerMeter * r.lengths[i]
		if len(hist) == len(pos) && r.envelopes[i].LBKeogh(pos) >= threshold {
			continue
		}
		if dtw.DistBanded(hist, pos, window) < threshold {
			return true
		}
	}
	return false
}

// GRUDetector wraps a GRU classifier — a recurrent architecture outside the
// paper's LSTM family, used as an extension transfer target for the attack
// (does an adversarial trajectory tuned against C also fool a different
// gating structure?).
type GRUDetector struct {
	Model *nn.GRUClassifier
	Kind  trajectory.FeatureKind
}

var _ MotionDetector = (*GRUDetector)(nil)

// Name implements MotionDetector.
func (d *GRUDetector) Name() string { return "GRU" }

// ProbReal implements MotionDetector.
func (d *GRUDetector) ProbReal(t *trajectory.T) float64 {
	return d.Model.Forward(trajectory.SequenceFeatures(t, d.Kind))
}

// TrainGRU fits the extension GRU detector on real/fake trajectory sets.
func TrainGRU(hidden int, real, fake []*trajectory.T, cfg nn.TrainConfig) (*GRUDetector, error) {
	if len(real) == 0 || len(fake) == 0 {
		return nil, fmt.Errorf("detect: need both real (%d) and fake (%d) trajectories", len(real), len(fake))
	}
	const kind = trajectory.FeatureDistAngle
	samples := make([]nn.Sample, 0, len(real)+len(fake))
	for _, t := range real {
		samples = append(samples, nn.Sample{Seq: trajectory.SequenceFeatures(t, kind), Label: 1})
	}
	for _, t := range fake {
		samples = append(samples, nn.Sample{Seq: trajectory.SequenceFeatures(t, kind), Label: 0})
	}
	model, err := nn.NewGRUClassifier(nn.Config{
		InputDim: kind.Dim(), Hidden: []int{hidden}, Seed: 14, MeanPool: true,
	})
	if err != nil {
		return nil, fmt.Errorf("detect: build GRU: %w", err)
	}
	if err := model.Train(samples, cfg); err != nil {
		return nil, fmt.Errorf("detect: train GRU: %w", err)
	}
	return &GRUDetector{Model: model, Kind: kind}, nil
}
