package detect

import (
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/attack"
	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
)

var _rt0 = time.Date(2022, 7, 4, 9, 0, 0, 0, time.UTC)

func TestRuleCheckerCleanTrajectory(t *testing.T) {
	c := corpus(t)
	rc := NewRuleChecker()
	var flagged int
	for _, tr := range c.Real[:40] {
		if rc.IsSuspicious(tr) {
			flagged++
		}
	}
	if flagged > 2 {
		t.Fatalf("%d/40 genuine trajectories violate the physical rules", flagged)
	}
}

func TestRuleCheckerCatchesTeleport(t *testing.T) {
	rc := NewRuleChecker()
	pos := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 500, Y: 0}, {X: 501, Y: 0}}
	tr := trajectory.New(pos, _rt0, time.Second)
	tr.Mode = trajectory.ModeWalking
	vs := rc.Check(tr)
	if len(vs) == 0 {
		t.Fatal("teleport not caught")
	}
	var teleport, speed bool
	for _, v := range vs {
		switch v.Rule {
		case "teleport":
			teleport = true
		case "speed":
			speed = true
		}
		if v.String() == "" {
			t.Fatal("violation must format")
		}
	}
	if !teleport || !speed {
		t.Fatalf("expected teleport and speed violations, got %v", vs)
	}
}

func TestRuleCheckerCatchesImpossibleSpeedPerMode(t *testing.T) {
	rc := NewRuleChecker()
	// 10 m/s is fine for driving, impossible for walking.
	pos := make([]geo.Point, 10)
	for i := 1; i < 10; i++ {
		pos[i] = geo.Point{X: pos[i-1].X + 10}
	}
	walk := trajectory.New(pos, _rt0, time.Second)
	walk.Mode = trajectory.ModeWalking
	if !rc.IsSuspicious(walk) {
		t.Fatal("10 m/s walking accepted")
	}
	drive := trajectory.New(pos, _rt0, time.Second)
	drive.Mode = trajectory.ModeDriving
	if rc.IsSuspicious(drive) {
		t.Fatal("10 m/s driving rejected")
	}
	// Unknown mode uses the default cap.
	unknown := trajectory.New(pos, _rt0, time.Second)
	if rc.IsSuspicious(unknown) {
		t.Fatal("10 m/s with default cap rejected")
	}
}

func TestRuleCheckerCatchesImpossibleAcceleration(t *testing.T) {
	rc := NewRuleChecker()
	// 0 -> 30 m/s in one second: 30 m/s² burst.
	pos := []geo.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 30.5, Y: 0}, {X: 60.5, Y: 0}}
	tr := trajectory.New(pos, _rt0, time.Second)
	tr.Mode = trajectory.ModeDriving
	var accel bool
	for _, v := range rc.Check(tr) {
		if v.Rule == "acceleration" {
			accel = true
		}
	}
	if !accel {
		t.Fatal("acceleration burst not caught")
	}
}

// TestRuleCheckerDefeatedByReplay reproduces the paper's related-work
// critique: a replayed genuine trajectory passes every physical rule.
func TestRuleCheckerDefeatedByReplay(t *testing.T) {
	c := corpus(t)
	rc := NewRuleChecker()
	rng := rand.New(rand.NewSource(9))
	var caught int
	for _, tr := range c.Real[:30] {
		replay := attack.NaiveReplay(rng, tr)
		if rc.IsSuspicious(replay) {
			caught++
		}
	}
	if caught > 5 {
		t.Fatalf("rules caught %d/30 replays; they should be blind to them", caught)
	}
}
