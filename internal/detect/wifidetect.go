package detect

import (
	"fmt"

	"trajforge/internal/rssimap"
	"trajforge/internal/stats"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// WiFiDetector is the paper's dedicated countermeasure (Sec. III-C): every
// uploaded point carries a WiFi scan; the crowdsourced store turns the scan
// into (Num, Φ) confidence features, and an XGBoost model labels the whole
// trajectory. The positive class is "fake".
type WiFiDetector struct {
	Store    *rssimap.Store
	Model    *xgb.Model
	Features rssimap.FeatureConfig
}

// TrainWiFiDetector fits the detector from labelled uploads against a
// historical store.
func TrainWiFiDetector(store *rssimap.Store, real, fake []*wifi.Upload,
	fcfg rssimap.FeatureConfig, xcfg xgb.Config) (*WiFiDetector, error) {
	if store == nil || store.Len() == 0 {
		return nil, fmt.Errorf("detect: historical store is empty")
	}
	if len(real) == 0 || len(fake) == 0 {
		return nil, fmt.Errorf("detect: need both real (%d) and fake (%d) uploads", len(real), len(fake))
	}
	X := make([][]float64, 0, len(real)+len(fake))
	y := make([]float64, 0, len(real)+len(fake))
	for i, u := range real {
		feat, err := store.Features(u, fcfg)
		if err != nil {
			return nil, fmt.Errorf("detect: features of real upload %d: %w", i, err)
		}
		X = append(X, feat)
		y = append(y, 0)
	}
	for i, u := range fake {
		feat, err := store.Features(u, fcfg)
		if err != nil {
			return nil, fmt.Errorf("detect: features of fake upload %d: %w", i, err)
		}
		X = append(X, feat)
		y = append(y, 1)
	}
	model, err := xgb.Train(X, y, xcfg)
	if err != nil {
		return nil, fmt.Errorf("detect: train WiFi detector: %w", err)
	}
	return &WiFiDetector{Store: store, Model: model, Features: fcfg}, nil
}

// ProbFake returns P(fake | upload).
func (d *WiFiDetector) ProbFake(u *wifi.Upload) (float64, error) {
	feat, err := d.Store.Features(u, d.Features)
	if err != nil {
		return 0, err
	}
	return d.Model.PredictProb(feat), nil
}

// IsFake applies the 0.5 threshold.
func (d *WiFiDetector) IsFake(u *wifi.Upload) (bool, error) {
	p, err := d.ProbFake(u)
	return p >= 0.5, err
}

// EvaluateWiFi scores the detector on labelled uploads; fake is the
// positive class.
func (d *WiFiDetector) EvaluateWiFi(real, fake []*wifi.Upload) (stats.Confusion, error) {
	var c stats.Confusion
	for i, u := range real {
		isFake, err := d.IsFake(u)
		if err != nil {
			return c, fmt.Errorf("detect: evaluate real upload %d: %w", i, err)
		}
		c.Observe(isFake, false)
	}
	for i, u := range fake {
		isFake, err := d.IsFake(u)
		if err != nil {
			return c, fmt.Errorf("detect: evaluate fake upload %d: %w", i, err)
		}
		c.Observe(isFake, true)
	}
	return c, nil
}

// AUC scores the detector threshold-free over labelled uploads: the
// probability that a random fake outranks a random real in P(fake).
func (d *WiFiDetector) AUC(real, fake []*wifi.Upload) (float64, error) {
	pos := make([]float64, 0, len(fake))
	neg := make([]float64, 0, len(real))
	for i, u := range fake {
		p, err := d.ProbFake(u)
		if err != nil {
			return 0, fmt.Errorf("detect: AUC fake %d: %w", i, err)
		}
		pos = append(pos, p)
	}
	for i, u := range real {
		p, err := d.ProbFake(u)
		if err != nil {
			return 0, fmt.Errorf("detect: AUC real %d: %w", i, err)
		}
		neg = append(neg, p)
	}
	return stats.AUC(pos, neg), nil
}
