package detect

import (
	"fmt"

	"trajforge/internal/parallel"
	"trajforge/internal/rssimap"
	"trajforge/internal/stats"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// WiFiDetector is the paper's dedicated countermeasure (Sec. III-C): every
// uploaded point carries a WiFi scan; the crowdsourced store turns the scan
// into (Num, Φ) confidence features, and an XGBoost model labels the whole
// trajectory. The positive class is "fake". Store is any rssimap.Backend —
// the global in-memory store or a geo-sharded one.
type WiFiDetector struct {
	Store    rssimap.Backend
	Model    *xgb.Model
	Features rssimap.FeatureConfig
}

// TrainWiFiDetector fits the detector from labelled uploads against a
// historical store.
func TrainWiFiDetector(store rssimap.Backend, real, fake []*wifi.Upload,
	fcfg rssimap.FeatureConfig, xcfg xgb.Config) (*WiFiDetector, error) {
	if store == nil || store.Len() == 0 {
		return nil, fmt.Errorf("detect: historical store is empty")
	}
	if len(real) == 0 || len(fake) == 0 {
		return nil, fmt.Errorf("detect: need both real (%d) and fake (%d) uploads", len(real), len(fake))
	}
	realX, err := store.FeaturesBatch(real, fcfg)
	if err != nil {
		return nil, fmt.Errorf("detect: features of real %w", err)
	}
	fakeX, err := store.FeaturesBatch(fake, fcfg)
	if err != nil {
		return nil, fmt.Errorf("detect: features of fake %w", err)
	}
	X := make([][]float64, 0, len(real)+len(fake))
	y := make([]float64, 0, len(real)+len(fake))
	for _, feat := range realX {
		X = append(X, feat)
		y = append(y, 0)
	}
	for _, feat := range fakeX {
		X = append(X, feat)
		y = append(y, 1)
	}
	model, err := xgb.Train(X, y, xcfg)
	if err != nil {
		return nil, fmt.Errorf("detect: train WiFi detector: %w", err)
	}
	return &WiFiDetector{Store: store, Model: model, Features: fcfg}, nil
}

// ProbFake returns P(fake | upload).
func (d *WiFiDetector) ProbFake(u *wifi.Upload) (float64, error) {
	feat, err := d.Store.Features(u, d.Features)
	if err != nil {
		return 0, err
	}
	return d.Model.PredictProb(feat), nil
}

// ProbFakeBatch returns P(fake | upload) for many uploads, fanning the
// feature extraction across the worker pool and scoring the assembled
// feature block through the compiled flat forest in cache-friendly chunks
// (xgb.PredictBatchInto). Results are ordered by upload index and
// bit-identical to calling ProbFake serially.
func (d *WiFiDetector) ProbFakeBatch(uploads []*wifi.Upload) ([]float64, error) {
	feats, err := d.Store.FeaturesBatch(uploads, d.Features)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(feats))
	parallel.ForEachChunk(len(feats), func(lo, hi int) {
		d.Model.PredictBatchInto(out[lo:hi], feats[lo:hi])
	})
	return out, nil
}

// IsFake applies the 0.5 threshold.
func (d *WiFiDetector) IsFake(u *wifi.Upload) (bool, error) {
	p, err := d.ProbFake(u)
	return p >= 0.5, err
}

// EvaluateWiFi scores the detector on labelled uploads; fake is the
// positive class. Uploads are verified through the batch path.
func (d *WiFiDetector) EvaluateWiFi(real, fake []*wifi.Upload) (stats.Confusion, error) {
	var c stats.Confusion
	realP, err := d.ProbFakeBatch(real)
	if err != nil {
		return c, fmt.Errorf("detect: evaluate real %w", err)
	}
	fakeP, err := d.ProbFakeBatch(fake)
	if err != nil {
		return c, fmt.Errorf("detect: evaluate fake %w", err)
	}
	for _, p := range realP {
		c.Observe(p >= 0.5, false)
	}
	for _, p := range fakeP {
		c.Observe(p >= 0.5, true)
	}
	return c, nil
}

// AUC scores the detector threshold-free over labelled uploads: the
// probability that a random fake outranks a random real in P(fake).
func (d *WiFiDetector) AUC(real, fake []*wifi.Upload) (float64, error) {
	pos, err := d.ProbFakeBatch(fake)
	if err != nil {
		return 0, fmt.Errorf("detect: AUC fake %w", err)
	}
	neg, err := d.ProbFakeBatch(real)
	if err != nil {
		return 0, fmt.Errorf("detect: AUC real %w", err)
	}
	return stats.AUC(pos, neg), nil
}
