package detect

import (
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/dataset"
	"trajforge/internal/nn"
	"trajforge/internal/rssimap"
	"trajforge/internal/trajectory"
	"trajforge/internal/wifi"
	"trajforge/internal/xgb"
)

// motionFixture builds a small Sec. IV-A corpus once.
var _corpus *dataset.MotionCorpus

func corpus(t *testing.T) *dataset.MotionCorpus {
	t.Helper()
	if _corpus != nil {
		return _corpus
	}
	cfg := dataset.DefaultMotionConfig()
	cfg.Trips = 70
	cfg.Points = 45
	cfg.Modes = []trajectory.Mode{trajectory.ModeWalking}
	c, err := dataset.BuildMotionCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_corpus = c
	return c
}

func TestTrainLSTMDetectsNaiveFakes(t *testing.T) {
	c := corpus(t)
	realTrain, realTest := dataset.Split(c.Real, 0.7)
	fakeTrain, fakeTest := dataset.Split(c.NaiveNav, 0.7)

	det, err := TrainLSTM(LSTMSpec{
		Name: "C", Kind: trajectory.FeatureDistAngle, Hidden: []int{10}, Seed: 1,
	}, realTrain, fakeTrain, nn.TrainConfig{Epochs: 8, BatchSize: 16, LearningRate: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != "C" {
		t.Fatal("name lost")
	}
	conf := EvaluateMotion(det, realTest, fakeTest)
	if conf.Accuracy() < 0.85 {
		t.Fatalf("LSTM detector accuracy %v too low on naive fakes: %v", conf.Accuracy(), conf)
	}
}

func TestTrainXGBMotionDetectsNaiveFakes(t *testing.T) {
	c := corpus(t)
	realTrain, realTest := dataset.Split(c.Real, 0.7)
	fakeTrain, fakeTest := dataset.Split(c.NaiveNav, 0.7)

	det, err := TrainXGBMotion(realTrain, fakeTrain, xgb.Config{
		Rounds: 40, MaxDepth: 3, LearningRate: 0.3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != "XGBoost" {
		t.Fatal("name wrong")
	}
	conf := EvaluateMotion(det, realTest, fakeTest)
	if conf.Accuracy() < 0.85 {
		t.Fatalf("XGBoost accuracy %v too low: %v", conf.Accuracy(), conf)
	}
}

func TestTrainErrorsOnEmptySets(t *testing.T) {
	c := corpus(t)
	if _, err := TrainLSTM(PaperModels(8)[0], nil, c.NaiveNav, nn.TrainConfig{}); err == nil {
		t.Fatal("empty real set must error")
	}
	if _, err := TrainXGBMotion(c.Real, nil, xgb.Config{}); err == nil {
		t.Fatal("empty fake set must error")
	}
}

func TestPaperModelsSpecs(t *testing.T) {
	specs := PaperModels(16)
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Name != "C" || specs[1].Name != "LSTM-1" || specs[2].Name != "LSTM-2" {
		t.Fatal("spec names wrong")
	}
	if len(specs[2].Hidden) != 2 {
		t.Fatal("LSTM-2 must have two layers")
	}
	if specs[1].Kind != trajectory.FeatureDxDy {
		t.Fatal("LSTM-1 must use dx-dy features")
	}
}

func TestDetectionRate(t *testing.T) {
	c := corpus(t)
	det, err := TrainXGBMotion(c.Real[:30], c.NaiveNav[:30], xgb.Config{
		Rounds: 20, MaxDepth: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := DetectionRate(det, c.NaiveNav[30:])
	if rate < 0.7 {
		t.Fatalf("detection rate %v too low for naive fakes", rate)
	}
	if DetectionRate(det, nil) != 0 {
		t.Fatal("empty set must be 0")
	}
}

func TestReplayChecker(t *testing.T) {
	c := corpus(t)
	rc, err := NewReplayChecker(1.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Real[:20] {
		rc.AddHistory(tr)
	}
	rng := rand.New(rand.NewSource(5))
	// A naive replay of a stored trajectory must be flagged.
	var flagged int
	for i := 0; i < 20; i++ {
		replay := c.Real[i].Clone()
		for j := range replay.Points {
			replay.Points[j].Pos.X += rng.NormFloat64() * 0.5
			replay.Points[j].Pos.Y += rng.NormFloat64() * 0.5
		}
		if rc.IsReplay(replay) {
			flagged++
		}
	}
	if flagged < 18 {
		t.Fatalf("only %d/20 naive replays flagged", flagged)
	}
	// Unrelated fresh trajectories must not be flagged.
	var falsePos int
	for _, tr := range c.Real[20:50] {
		if rc.IsReplay(tr) {
			falsePos++
		}
	}
	if falsePos > 2 {
		t.Fatalf("%d/30 fresh trajectories falsely flagged as replays", falsePos)
	}
	if _, err := NewReplayChecker(0); err == nil {
		t.Fatal("zero MinD must error")
	}
}

// TestWiFiDetectorEndToEnd is the core defense check: build an area, train
// the detector on real/forged uploads, and verify it separates a held-out
// set — the miniature version of Table IV.
func TestWiFiDetectorEndToEnd(t *testing.T) {
	spec := dataset.AreaSpec{
		Name: "test", Mode: trajectory.ModeWalking,
		Width: 140, Height: 120,
		NumAPs:       260,
		Trajectories: 160,
		Points:       30, Interval: 2 * time.Second,
		BlockSize: 45,
		Seed:      11,
	}
	area, err := dataset.BuildArea(spec)
	if err != nil {
		t.Fatal(err)
	}
	hist, fresh, err := area.SplitHistorical(120)
	if err != nil {
		t.Fatal(err)
	}
	// The store excludes the training reals (hist[80:120]); a trajectory
	// whose own scans sit in the store gets self-inflated confidences.
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), dataset.Records(hist[:80]))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(12))
	const minD = 1.2
	// Training fakes from the first 40 historical uploads; training reals
	// are the next 60 historical uploads (the provider can use its own
	// stock as normals, as the paper does).
	var trainFake, testFake []*wifi.Upload
	for i := 0; i < 40; i++ {
		f, err := dataset.ForgeUpload(rng, hist[i], minD)
		if err != nil {
			t.Fatal(err)
		}
		trainFake = append(trainFake, f)
	}
	for i := 40; i < 80; i++ {
		f, err := dataset.ForgeUpload(rng, hist[i], minD)
		if err != nil {
			t.Fatal(err)
		}
		testFake = append(testFake, f)
	}
	trainReal := hist[80:120]
	testReal := fresh

	det, err := TrainWiFiDetector(store, trainReal, trainFake,
		rssimap.DefaultFeatureConfig(),
		xgb.Config{Rounds: 60, MaxDepth: 4, LearningRate: 0.2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := det.EvaluateWiFi(testReal, testFake)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("WiFi detector: %v", conf)
	// Single-seed accuracy at this sparse scale bounces by several points;
	// the paper-scale harness (EXPERIMENTS.md) is the measured artifact.
	// Here we only demand a clear separation.
	if conf.Accuracy() < 0.7 {
		t.Fatalf("WiFi detector accuracy %v below 0.7 at test scale: %v", conf.Accuracy(), conf)
	}
	if conf.Recall() < 0.65 {
		t.Fatalf("WiFi detector misses too many fakes: %v", conf)
	}
}

func TestTrainWiFiDetectorErrors(t *testing.T) {
	store, err := rssimap.NewStore(rssimap.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainWiFiDetector(store, nil, nil, rssimap.DefaultFeatureConfig(), xgb.Config{}); err == nil {
		t.Fatal("empty store must error")
	}
}

func TestTrainGRUDetectsNaiveFakes(t *testing.T) {
	c := corpus(t)
	realTrain, realTest := dataset.Split(c.Real, 0.7)
	fakeTrain, fakeTest := dataset.Split(c.NaiveNav, 0.7)
	det, err := TrainGRU(10, realTrain, fakeTrain, nn.TrainConfig{
		Epochs: 15, BatchSize: 8, LearningRate: 0.02, LRDecay: 0.97, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != "GRU" {
		t.Fatal("name wrong")
	}
	conf := EvaluateMotion(det, realTest, fakeTest)
	if conf.Accuracy() < 0.75 {
		t.Fatalf("GRU accuracy %v too low on naive fakes: %v", conf.Accuracy(), conf)
	}
	if _, err := TrainGRU(8, nil, fakeTrain, nn.TrainConfig{}); err == nil {
		t.Fatal("empty real set must error")
	}
}
