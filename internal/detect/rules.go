package detect

import (
	"fmt"

	"trajforge/internal/trajectory"
)

// RuleChecker is the rule-based detector family of the paper's related work
// (He et al., Polakis et al.): cheap sanity rules on speed, acceleration
// and teleportation. The paper's point — which the fitness example and the
// Table II experiments reproduce — is that such rules are trivially
// defeated by replaying a genuine historical trajectory; they remain useful
// as a first filter against crude fakes.
type RuleChecker struct {
	// MaxSpeed per mode in m/s; modes without an entry use MaxSpeedDefault.
	MaxSpeed map[trajectory.Mode]float64
	// MaxSpeedDefault bounds unknown-mode speeds.
	MaxSpeedDefault float64
	// MaxAccel bounds the absolute per-step acceleration in m/s².
	MaxAccel float64
	// MaxJump bounds a single-step displacement in metres (teleport check),
	// 0 disables it.
	MaxJump float64
}

// NewRuleChecker returns rules with generous physical bounds per mode.
func NewRuleChecker() *RuleChecker {
	return &RuleChecker{
		MaxSpeed: map[trajectory.Mode]float64{
			trajectory.ModeWalking: 4,  // sprinting pedestrian
			trajectory.ModeCycling: 14, // downhill racer
			trajectory.ModeDriving: 45, // 160 km/h
		},
		MaxSpeedDefault: 45,
		MaxAccel:        8,
		MaxJump:         200,
	}
}

// Violation describes why a trajectory failed the rules.
type Violation struct {
	Rule  string
	Index int
	Value float64
	Limit float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at step %d: %.2f exceeds %.2f", v.Rule, v.Index, v.Value, v.Limit)
}

// Check returns every rule violation of the trajectory (empty when clean).
func (rc *RuleChecker) Check(t *trajectory.T) []Violation {
	var out []Violation
	limit := rc.MaxSpeedDefault
	if v, ok := rc.MaxSpeed[t.Mode]; ok {
		limit = v
	}
	steps := t.Steps()
	for i, s := range steps {
		if rc.MaxJump > 0 && s.Dist > rc.MaxJump {
			out = append(out, Violation{Rule: "teleport", Index: i, Value: s.Dist, Limit: rc.MaxJump})
		}
		if s.Dt > 0 && limit > 0 {
			if speed := s.Dist / s.Dt; speed > limit {
				out = append(out, Violation{Rule: "speed", Index: i, Value: speed, Limit: limit})
			}
		}
	}
	if rc.MaxAccel > 0 {
		for i, a := range t.Accelerations() {
			if a > rc.MaxAccel || a < -rc.MaxAccel {
				out = append(out, Violation{Rule: "acceleration", Index: i + 1, Value: a, Limit: rc.MaxAccel})
			}
		}
	}
	return out
}

// IsSuspicious reports whether any rule fired.
func (rc *RuleChecker) IsSuspicious(t *trajectory.T) bool {
	return len(rc.Check(t)) > 0
}
