package detect

import (
	"math/rand"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/mobility"
	"trajforge/internal/nav"
	"trajforge/internal/roadnet"
	"trajforge/internal/trajectory"
)

func routeFixture(t *testing.T) (*roadnet.Graph, *RouteChecker) {
	t.Helper()
	g, err := roadnet.Generate(rand.New(rand.NewSource(3)), roadnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRouteChecker(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, rc
}

func TestNewRouteCheckerErrors(t *testing.T) {
	if _, err := NewRouteChecker(nil); err == nil {
		t.Fatal("nil graph must error")
	}
}

func TestRouteCheckerAcceptsRealTrajectories(t *testing.T) {
	g, rc := routeFixture(t)
	svc := nav.NewService(g)
	rng := rand.New(rand.NewSource(4))
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
	var checked, rejected int
	for trial := 0; trial < 20; trial++ {
		from, to, err := nav.RandomTripEndpoints(rng, g, 300)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := svc.Route(from, to, trajectory.ModeWalking)
		if err != nil {
			continue
		}
		tk, err := mobility.Simulate(rng, mobility.Options{
			Route: plan.Polyline, Mode: trajectory.ModeWalking,
			Start: start, Interval: time.Second, MaxPoints: 40,
		})
		if err != nil {
			continue
		}
		checked++
		if rc.IsIrrational(tk.Trajectory()) {
			rejected++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d trajectories checked", checked)
	}
	if rejected > checked/10 {
		t.Fatalf("%d/%d genuine trajectories rejected as irrational", rejected, checked)
	}
}

func TestRouteCheckerRejectsOffRoadTrajectory(t *testing.T) {
	_, rc := routeFixture(t)
	// A straight line far outside the street grid.
	pos := make([]geo.Point, 30)
	for i := range pos {
		pos[i] = geo.Point{X: -300 + float64(i)*2, Y: -300}
	}
	tr := trajectory.New(pos, time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC), time.Second)
	if !rc.IsIrrational(tr) {
		t.Fatal("far off-road trajectory accepted")
	}
	s := rc.Stats(tr)
	if s.MeanDist < rc.MaxMeanDist {
		t.Fatalf("stats = %+v, expected large distances", s)
	}
}

func TestRouteCheckerEmptyTrajectory(t *testing.T) {
	_, rc := routeFixture(t)
	if !rc.IsIrrational(&trajectory.T{}) {
		t.Fatal("empty trajectory must be irrational")
	}
	if s := rc.Stats(&trajectory.T{}); s.MeanDist != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}
