package detect

import (
	"fmt"

	"trajforge/internal/roadnet"
	"trajforge/internal/stats"
	"trajforge/internal/trajectory"
)

// RouteChecker implements the paper's route-rationality requirement from
// the defender's side: a genuine outdoor trajectory, projected onto the
// map, stays near the road network. Trajectories that cut across blocks or
// drift far from any road are rejected before the learning-based stages.
type RouteChecker struct {
	index *roadnet.EdgeIndex
	// MaxMeanDist bounds the mean distance to the nearest road (metres).
	MaxMeanDist float64
	// MaxPointDist bounds the single worst point (metres).
	MaxPointDist float64
	// OffRoadFraction bounds the share of points farther than MaxMeanDist
	// from any road.
	OffRoadFraction float64
}

// NewRouteChecker builds a checker over the road network. The default
// bounds allow GPS error, lateral wander and corner cutting (mean 15 m,
// worst point 60 m, at most 30% of points beyond the mean bound).
func NewRouteChecker(g *roadnet.Graph) (*RouteChecker, error) {
	if g == nil || g.NumEdges() == 0 {
		return nil, fmt.Errorf("detect: route checker needs a non-empty road network")
	}
	return &RouteChecker{
		index:           roadnet.NewEdgeIndex(g, 50),
		MaxMeanDist:     15,
		MaxPointDist:    60,
		OffRoadFraction: 0.3,
	}, nil
}

// RouteStats summarises a trajectory's relation to the road network.
type RouteStats struct {
	MeanDist    float64
	MaxDist     float64
	OffRoadFrac float64
}

// Stats measures the trajectory against the road network.
func (rc *RouteChecker) Stats(t *trajectory.T) RouteStats {
	if t.Len() == 0 {
		return RouteStats{}
	}
	dists := make([]float64, t.Len())
	var offRoad int
	for i, p := range t.Points {
		dists[i] = rc.index.DistanceToRoad(p.Pos)
		if dists[i] > rc.MaxMeanDist {
			offRoad++
		}
	}
	return RouteStats{
		MeanDist:    stats.Mean(dists),
		MaxDist:     stats.Max(dists),
		OffRoadFrac: float64(offRoad) / float64(t.Len()),
	}
}

// IsIrrational reports whether the trajectory violates route rationality.
func (rc *RouteChecker) IsIrrational(t *trajectory.T) bool {
	if t.Len() == 0 {
		return true
	}
	s := rc.Stats(t)
	return s.MeanDist > rc.MaxMeanDist ||
		s.MaxDist > rc.MaxPointDist ||
		s.OffRoadFrac > rc.OffRoadFraction
}
