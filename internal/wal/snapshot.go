package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"trajforge/internal/fsx"
)

// Snapshot file layout:
//
//	magic[8] (last byte 'S') | generation uint64 | length uint64 | crc uint32 | payload
//
// Snapshots are written to a temporary file, fsynced, and renamed into
// place, so a reader only ever sees the previous complete snapshot or the
// new complete snapshot — never a torn one.

var snapMagic = [8]byte{'T', 'F', 'S', 'N', 'A', 'P', 1, 0}

const snapHeaderSize = 8 + 8 + 8 + 4

// ErrNoSnapshot reports that no snapshot file exists yet.
var ErrNoSnapshot = errors.New("wal: no snapshot")

// WriteSnapshot atomically replaces the snapshot at path with the given
// generation and payload.
func WriteSnapshot(path string, gen uint64, payload []byte) error {
	return WriteSnapshotFS(fsx.OS, path, gen, payload)
}

// WriteSnapshotFS is WriteSnapshot against an injectable filesystem. The
// sequence — write tmp, fsync tmp, rename, fsync directory — makes the
// replacement atomic and the rename itself durable against power loss.
func WriteSnapshotFS(fsys fsx.FS, path string, gen uint64, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	var hdr [snapHeaderSize]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], gen)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("wal: snapshot sync dir: %w", err)
	}
	return nil
}

// ReadSnapshot loads and verifies the snapshot at path. It returns
// ErrNoSnapshot when the file does not exist.
func ReadSnapshot(path string) (gen uint64, payload []byte, err error) {
	return ReadSnapshotFS(fsx.OS, path)
}

// ReadSnapshotFS is ReadSnapshot against an injectable filesystem.
func ReadSnapshotFS(fsys fsx.FS, path string) (gen uint64, payload []byte, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil, ErrNoSnapshot
		}
		return 0, nil, fmt.Errorf("wal: read snapshot: %w", err)
	}
	if len(data) < snapHeaderSize || [8]byte(data[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot header in %s", ErrCorrupt, path)
	}
	gen = binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint64(data[16:24])
	if uint64(len(data)-snapHeaderSize) != n {
		return 0, nil, fmt.Errorf("%w: snapshot length in %s", ErrCorrupt, path)
	}
	payload = data[snapHeaderSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[24:28]) {
		return 0, nil, fmt.Errorf("%w: snapshot crc in %s", ErrCorrupt, path)
	}
	return gen, payload, nil
}
