package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log) (types []byte, payloads [][]byte) {
	t.Helper()
	err := l.Replay(func(typ byte, payload []byte) error {
		types = append(types, typ)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return types, payloads
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{})
	want := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 10_000)}
	for i, p := range want {
		if err := l.Append(byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, path, Options{})
	if l2.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", l2.Generation())
	}
	types, payloads := collect(t, l2)
	if len(payloads) != len(want) {
		t.Fatalf("replayed %d frames, want %d", len(payloads), len(want))
	}
	for i := range want {
		if types[i] != byte(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("frame %d = (%d, %q)", i, types[i], payloads[i])
		}
	}
	frames, size := l2.Stats()
	if frames != 3 || size <= headerSize {
		t.Fatalf("stats = (%d, %d)", frames, size)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append(1, []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the file mid-way through the last frame.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, path, Options{})
	_, payloads := collect(t, l2)
	if len(payloads) != 4 {
		t.Fatalf("recovered %d frames, want 4 (torn fifth dropped)", len(payloads))
	}
	// The recovered log must accept fresh appends cleanly.
	if err := l2.Append(2, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	_, payloads = collect(t, l2)
	if len(payloads) != 5 || string(payloads[4]) != "after-recovery" {
		t.Fatalf("after recovery: %d frames, last %q", len(payloads), payloads[len(payloads)-1])
	}
}

func TestCorruptFrameTruncatedOnRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(1, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last frame's payload: CRC must catch it.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, info.Size()-10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openT(t, path, Options{})
	_, payloads := collect(t, l2)
	if len(payloads) != 2 {
		t.Fatalf("recovered %d frames, want 2", len(payloads))
	}
}

func TestEmptyAndTornHeader(t *testing.T) {
	dir := t.TempDir()
	// A fresh path initialises generation 1.
	l := openT(t, filepath.Join(dir, "fresh.log"), Options{})
	if l.Generation() != 1 {
		t.Fatalf("fresh generation = %d", l.Generation())
	}
	// A file shorter than the header restarts clean.
	torn := filepath.Join(dir, "torn.log")
	if err := os.WriteFile(torn, []byte("TFW"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, torn, Options{})
	if l2.Generation() != 1 {
		t.Fatalf("torn-header generation = %d", l2.Generation())
	}
	// Garbage magic is refused, not silently wiped.
	bad := filepath.Join(dir, "bad.log")
	if err := os.WriteFile(bad, bytes.Repeat([]byte{7}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic error = %v", err)
	}
}

func TestResetBumpsGenerationAndEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{})
	for i := 0; i < 4; i++ {
		if err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(2); err != nil {
		t.Fatal(err)
	}
	if g := l.Generation(); g != 2 {
		t.Fatalf("generation after reset = %d", g)
	}
	if frames, _ := l.Stats(); frames != 0 {
		t.Fatalf("frames after reset = %d", frames)
	}
	// The reset log keeps accepting appends, and both survive reopen.
	if err := l.Append(9, []byte("post-reset")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, path, Options{})
	if l2.Generation() != 2 {
		t.Fatalf("reopened generation = %d", l2.Generation())
	}
	types, payloads := collect(t, l2)
	if len(payloads) != 1 || types[0] != 9 || string(payloads[0]) != "post-reset" {
		t.Fatalf("reopened frames = %v %q", types, payloads)
	}
}

func TestBatchedSyncSurvivesCloseAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{SyncInterval: time.Millisecond})
	for i := 0; i < 100; i++ {
		if err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, path, Options{})
	if frames, _ := l2.Stats(); frames != 100 {
		t.Fatalf("frames = %d, want 100", frames)
	}
}

func TestSnapshotRoundtripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.bin")
	if _, _, err := ReadSnapshot(path); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing snapshot error = %v", err)
	}
	payload := bytes.Repeat([]byte("state"), 1000)
	if err := WriteSnapshot(path, 7, payload); err != nil {
		t.Fatal(err)
	}
	gen, got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("snapshot roundtrip gen=%d len=%d", gen, len(got))
	}
	// Overwrite replaces atomically.
	if err := WriteSnapshot(path, 8, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	gen, got, err = ReadSnapshot(path)
	if err != nil || gen != 8 || string(got) != "newer" {
		t.Fatalf("second snapshot gen=%d payload=%q err=%v", gen, got, err)
	}
	// Flip a payload byte: CRC must reject.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot error = %v", err)
	}
}

func TestReplayErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("stop")
	n := 0
	err := l.Replay(func(byte, []byte) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 2 {
		t.Fatalf("replay err=%v after %d frames", err, n)
	}
}
