package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// seedLogBytes builds a clean two-frame log on disk and returns its bytes,
// so the fuzz corpus starts from structurally valid inputs.
func seedLogBytes(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.wal")
	l, err := Open(path, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := l.Append(1, []byte("hello frame")); err != nil {
		f.Fatal(err)
	}
	if err := l.Append(2, []byte("second frame with a longer payload")); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzFrameDecode feeds arbitrary bytes to the log opener. The contract
// under fuzz: never panic; when Open succeeds, Replay yields exactly
// Stats' frame count, the recovered tail accepts a fresh Append, and a
// reopen sees the appended frame — i.e. recovery always lands on a clean,
// writable log no matter how mangled the input file was.
func FuzzFrameDecode(f *testing.F) {
	valid := seedLogBytes(f)
	f.Add([]byte{})
	f.Add([]byte("not a wal file at all"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-frame
	f.Add(valid[:headerSize])   // header only
	corrupt := append([]byte(nil), valid...)
	corrupt[headerSize+5] ^= 0xff // flip a byte inside the first frame
	f.Add(corrupt)
	badmagic := append([]byte(nil), valid...)
	badmagic[0] ^= 0xff
	f.Add(badmagic)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path, Options{})
		if err != nil {
			return // corruption beyond torn-tail repair is a valid refusal
		}
		frames, _ := l.Stats()
		var replayed uint64
		if err := l.Replay(func(typ byte, payload []byte) error {
			replayed++
			return nil
		}); err != nil {
			t.Fatalf("replay after clean open: %v", err)
		}
		if replayed != frames {
			t.Fatalf("replayed %d frames, Stats reports %d", replayed, frames)
		}
		if err := l.Append(7, []byte("post-recovery append")); err != nil {
			t.Fatalf("append on recovered tail: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen after recovered append: %v", err)
		}
		defer l2.Close()
		if got, _ := l2.Stats(); got != frames+1 {
			t.Fatalf("reopen sees %d frames, want %d", got, frames+1)
		}
	})
}
