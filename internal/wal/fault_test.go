package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"trajforge/internal/fsx"
	"trajforge/internal/fsx/faultfs"
)

// TestInitialCreateSyncsDir pins the durability fix: creating a fresh log
// must fsync the parent directory, or the file's directory entry itself can
// vanish on power loss.
func TestInitialCreateSyncsDir(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(fsx.OS, faultfs.Options{})
	l, err := Open(filepath.Join(dir, "t.wal"), Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var dirSyncs int
	for _, op := range fs.Ops() {
		if op.Kind == faultfs.OpSyncDir && op.Path == dir {
			dirSyncs++
		}
	}
	if dirSyncs == 0 {
		t.Fatalf("fresh log creation recorded no directory sync: %+v", fs.Ops())
	}

	// Reopening the existing log must not rewrite the header or sync the
	// directory again.
	fs2 := faultfs.New(fsx.OS, faultfs.Options{})
	l2, err := Open(filepath.Join(dir, "t.wal"), Options{FS: fs2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, op := range fs2.Ops() {
		if op.Kind == faultfs.OpSyncDir {
			t.Fatalf("reopen synced the directory: %+v", fs2.Ops())
		}
	}
}

// TestCreateDirSyncFailureSurfaces: when the directory fsync after creating
// a fresh log fails, Open must fail — not hand back a log whose existence
// is not durable.
func TestCreateDirSyncFailureSurfaces(t *testing.T) {
	fs := faultfs.New(fsx.OS, faultfs.Options{FailAt: 1, FailKind: faultfs.OpSyncDir})
	if _, err := Open(filepath.Join(t.TempDir(), "t.wal"), Options{FS: fs}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("open with failing dir sync = %v, want injected error", err)
	}
}

// TestSnapshotDirSyncFailureSurfaces covers the rename-durability seam of
// the snapshot path: a failed directory fsync after the rename must fail
// the snapshot write.
func TestSnapshotDirSyncFailureSurfaces(t *testing.T) {
	fs := faultfs.New(fsx.OS, faultfs.Options{FailAt: 1, FailKind: faultfs.OpSyncDir})
	err := WriteSnapshotFS(fs, filepath.Join(t.TempDir(), "s.bin"), 1, []byte("payload"))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("snapshot with failing dir sync = %v, want injected error", err)
	}
}

// TestResetDirSyncFailureSurfaces covers the same seam in log compaction.
func TestResetDirSyncFailureSurfaces(t *testing.T) {
	// Dir sync #1 fires when the fresh log is created; #2 is Reset's.
	fs := faultfs.New(fsx.OS, faultfs.Options{FailAt: 2, FailKind: faultfs.OpSyncDir})
	l, err := Open(filepath.Join(t.TempDir(), "t.wal"), Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Reset(2); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("reset with failing dir sync = %v, want injected error", err)
	}
}

// appendN appends n one-payload frames, failing the test on error.
func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.Append(1, []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestENOSPCAppendThenRecovery: a full disk mid-append surfaces to the
// caller, and a reopen with a healthy filesystem recovers every frame
// appended before the fault.
func TestENOSPCAppendThenRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	// Write ops: #1 is the header; appends are (fh, payload) pairs, so the
	// 4th append's payload is write op #9.
	fs := faultfs.New(fsx.OS, faultfs.Options{
		FailAt: 9, FailKind: faultfs.OpWrite, Mode: faultfs.FaultENOSPC, Crash: true,
	})
	l, err := Open(path, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	if err := l.Append(1, []byte("doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk = %v, want ENOSPC", err)
	}
	l.Close() // crashed FS: close errors are expected, recovery is what matters

	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	frames, _ := l2.Stats()
	if frames != 3 {
		t.Fatalf("recovered %d frames, want 3", frames)
	}
	var got int
	if err := l2.Replay(func(typ byte, p []byte) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("replayed %d frames, want 3", got)
	}
}

// TestTornAppendTruncatedOnReopen: a torn frame write (power cut mid-frame)
// leaves a prefix on disk; reopen must truncate it and keep every complete
// frame.
func TestTornAppendTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	fs := faultfs.New(fsx.OS, faultfs.Options{
		Seed: 3, FailAt: 9, FailKind: faultfs.OpWrite, Mode: faultfs.FaultTorn, Crash: true,
	})
	l, err := Open(path, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	if err := l.Append(1, []byte("torn-payload-torn-payload")); err == nil {
		t.Fatal("torn append must error")
	}
	l.Close()

	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	frames, _ := l2.Stats()
	if frames != 3 {
		t.Fatalf("recovered %d frames, want 3", frames)
	}
	// The log must accept fresh appends on the cleaned tail.
	if err := l2.Append(2, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	var last []byte
	if err := l2.Replay(func(typ byte, p []byte) error { last = append(last[:0], p...); return nil }); err != nil {
		t.Fatal(err)
	}
	if string(last) != "after-recovery" {
		t.Fatalf("last frame = %q", last)
	}
}

// TestBackgroundSyncFailureWedgesLog: a group-commit fsync failure must not
// be swallowed by the background flusher — the next Append has to report
// it, because frames after a failed fsync have unknown durability.
func TestBackgroundSyncFailureWedgesLog(t *testing.T) {
	dir := t.TempDir()
	// Sync #1 is the header sync at creation; #2 is the flusher's.
	fs := faultfs.New(fsx.OS, faultfs.Options{FailAt: 2, FailKind: faultfs.OpSync})
	l, err := Open(filepath.Join(dir, "t.wal"), Options{SyncInterval: time.Millisecond, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := l.Append(1, []byte("probe"))
		if err != nil {
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("wedged append = %v, want injected sync error", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sync failure never surfaced on Append")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Sync must report the same wedge.
	if err := l.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Sync after wedge = %v", err)
	}
}
