// Package wal implements the durability layer of the provider: an
// append-only write-ahead log of length-prefixed, CRC-protected binary
// frames, plus atomically-replaced snapshot files. Together they make the
// crowdsourced RSSI history and the accept/reject ledger survive restarts
// and crashes: every accepted upload is framed into the log before it is
// acknowledged durable, and a snapshot of the full store state periodically
// compacts the log back to empty.
//
// Layout of a log file:
//
//	header  = magic[8] | generation uint64          (16 bytes, little endian)
//	frame   = length uint32 | crc uint32 | type byte | payload[length-1]
//
// length counts the type byte plus the payload; crc is IEEE CRC-32 over the
// same bytes. On Open the log is scanned frame by frame and truncated at
// the first torn or corrupt frame (a crash mid-write leaves at most one),
// so an Append after recovery always lands on a clean tail.
//
// Generations order the log against snapshots: Reset — called after a
// snapshot commits — atomically replaces the log with an empty one carrying
// the snapshot's generation. A snapshot with a newer generation than the
// log supersedes the log entirely (the crash window between snapshot rename
// and log reset); equal generations mean the log holds the frames appended
// since that snapshot.
//
// Appends are group-committed: writes go to the OS immediately, but fsync
// is batched on SyncInterval so a burst of uploads shares one disk flush.
// SyncInterval of zero syncs on every Append — the setting crash tests use.
//
// All disk access goes through the fsx seam (Options.FS), so the chaos and
// fault-injection tests can fail any individual write, sync, rename, or
// directory fsync and assert the recovery protocol holds. An fsync failure
// wedges the log: after a failed sync the state of the file is unknown
// (the kernel may have dropped the dirty pages), so every later Append and
// Sync returns the original error instead of pretending to be durable.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"trajforge/internal/fsx"
)

var magic = [8]byte{'T', 'F', 'W', 'A', 'L', 0, 1, 0}

const (
	headerSize      = 16
	frameOverhead   = 8 // length + crc
	maxFramePayload = 64 << 20
)

// ErrCorrupt reports a snapshot or log whose contents fail integrity
// checks beyond what torn-tail truncation can repair.
var ErrCorrupt = errors.New("wal: corrupt")

// Options configures a log.
type Options struct {
	// SyncInterval batches fsync: appends return after the OS write, and a
	// background flusher syncs at most once per interval. Zero syncs every
	// Append before it returns (slow, fully durable).
	SyncInterval time.Duration
	// FS is the filesystem the log lives on; nil means the real one.
	FS fsx.FS
}

// Log is an append-only frame log backed by one file.
type Log struct {
	path string
	opts Options
	fs   fsx.FS

	mu      sync.Mutex
	f       fsx.File
	gen     uint64
	frames  uint64
	bytes   int64
	dirty   bool
	closed  bool
	fresh   bool  // header was (re)initialised during recovery
	syncErr error // first fsync failure; wedges the log

	flushDone chan struct{}
	flushStop chan struct{}
}

// Open opens (or creates) the log at path, recovering a torn tail: the file
// is scanned frame by frame and truncated at the first incomplete or
// CRC-failing frame. A freshly created log syncs its parent directory, so
// the file's own directory entry survives power loss.
func Open(path string, opts Options) (*Log, error) {
	fs := opts.FS
	if fs == nil {
		fs = fsx.OS
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{path: path, opts: opts, fs: fs, f: f}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if l.fresh {
		if err := l.syncDir(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if opts.SyncInterval > 0 {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// recover validates the header and scans frames, truncating at the first
// torn or corrupt one.
func (l *Log) recover() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	if info.Size() < headerSize {
		// Empty or torn header: start a fresh generation-1 log.
		l.fresh = true
		return l.writeHeader(1)
	}
	var hdr [headerSize]byte
	if _, err := l.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: read header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return fmt.Errorf("%w: bad magic in %s", ErrCorrupt, l.path)
	}
	l.gen = binary.LittleEndian.Uint64(hdr[8:])

	// Scan frames to find the last clean offset.
	offset := int64(headerSize)
	size := info.Size()
	var fh [frameOverhead]byte
	buf := make([]byte, 4096)
	for {
		if size-offset < frameOverhead {
			break
		}
		if _, err := l.f.ReadAt(fh[:], offset); err != nil {
			return fmt.Errorf("wal: scan at %d: %w", offset, err)
		}
		n := binary.LittleEndian.Uint32(fh[:4])
		if n == 0 || n > maxFramePayload || size-offset-frameOverhead < int64(n) {
			break // torn tail
		}
		if int(n) > len(buf) {
			buf = make([]byte, n)
		}
		body := buf[:n]
		if _, err := l.f.ReadAt(body, offset+frameOverhead); err != nil {
			return fmt.Errorf("wal: scan body at %d: %w", offset, err)
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(fh[4:]) {
			break // corrupt tail
		}
		offset += frameOverhead + int64(n)
		l.frames++
	}
	if offset < size {
		if err := l.f.Truncate(offset); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := l.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	l.bytes = offset
	return nil
}

// writeHeader initialises the file with the given generation.
func (l *Log) writeHeader(gen uint64) error {
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], gen)
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync header: %w", err)
	}
	if _, err := l.f.Seek(headerSize, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	l.gen = gen
	l.frames = 0
	l.bytes = headerSize
	return nil
}

// Generation returns the log's generation number.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Stats returns the frame count and byte size of the log (header included).
func (l *Log) Stats() (frames uint64, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frames, l.bytes
}

// Append writes one frame. The frame is handed to the OS before Append
// returns; durability against power loss follows the SyncInterval batching
// policy (interval 0 syncs inline).
func (l *Log) Append(typ byte, payload []byte) error {
	if len(payload)+1 > maxFramePayload {
		return fmt.Errorf("wal: frame payload %d exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: append to closed log")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	var fh [frameOverhead + 1]byte
	n := uint32(len(payload) + 1)
	binary.LittleEndian.PutUint32(fh[:4], n)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	binary.LittleEndian.PutUint32(fh[4:8], crc.Sum32())
	fh[8] = typ
	if _, err := l.f.Write(fh[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	l.frames++
	l.bytes += frameOverhead + int64(n)
	if l.opts.SyncInterval == 0 {
		return l.noteSync(l.f.Sync())
	}
	l.dirty = true
	return nil
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return nil
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	l.dirty = false
	return l.noteSync(l.f.Sync())
}

// noteSync wedges the log on the first fsync failure: after a failed sync
// the kernel may have dropped the dirty pages, so no later Append or Sync
// may report success. Called with l.mu held.
func (l *Log) noteSync(err error) error {
	if err != nil && l.syncErr == nil {
		l.syncErr = fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return nil
}

// flushLoop is the group-commit goroutine: it fsyncs at most once per
// SyncInterval while appends keep the log dirty. A sync failure here is
// recorded and surfaces on the next Append or Sync — never swallowed.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed && l.syncErr == nil {
				l.dirty = false
				l.noteSync(l.f.Sync())
			}
			l.mu.Unlock()
		}
	}
}

// Replay invokes fn for every clean frame in order. It reads through a
// separate descriptor, so it is safe on an open log, but callers should
// replay before appending (the intended recovery sequence).
func (l *Log) Replay(fn func(typ byte, payload []byte) error) error {
	l.mu.Lock()
	limit := l.bytes
	l.mu.Unlock()
	f, err := l.fs.Open(l.path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	offset := int64(headerSize)
	var fh [frameOverhead]byte
	buf := make([]byte, 4096)
	for offset < limit {
		if _, err := f.ReadAt(fh[:], offset); err != nil {
			return fmt.Errorf("wal: replay at %d: %w", offset, err)
		}
		n := binary.LittleEndian.Uint32(fh[:4])
		if n == 0 || int64(n) > limit-offset-frameOverhead {
			return fmt.Errorf("%w: frame at %d inside validated region", ErrCorrupt, offset)
		}
		if int(n) > len(buf) {
			buf = make([]byte, n)
		}
		body := buf[:n]
		if _, err := f.ReadAt(body, offset+frameOverhead); err != nil {
			return fmt.Errorf("wal: replay body at %d: %w", offset, err)
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(fh[4:]) {
			return fmt.Errorf("%w: crc mismatch at %d", ErrCorrupt, offset)
		}
		if err := fn(body[0], body[1:]); err != nil {
			return err
		}
		offset += frameOverhead + int64(n)
	}
	return nil
}

// Reset atomically replaces the log with an empty one of the given
// generation — the compaction step after a snapshot with that generation
// has committed. A crash at any point leaves either the old log (the
// snapshot's newer generation supersedes it) or the new empty log.
func (l *Log) Reset(gen uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: reset of closed log")
	}
	tmp := l.path + ".tmp"
	nf, err := l.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], gen)
	if _, err := nf.Write(hdr[:]); err != nil {
		nf.Close()
		return fmt.Errorf("wal: reset header: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		nf.Close()
		return fmt.Errorf("wal: reset rename: %w", err)
	}
	if err := l.syncDir(); err != nil {
		nf.Close()
		return err
	}
	old := l.f
	l.f = nf
	old.Close()
	if _, err := l.f.Seek(headerSize, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	l.gen = gen
	l.frames = 0
	l.bytes = headerSize
	l.dirty = false
	l.syncErr = nil // fresh file, fresh durability state
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.flushStop != nil {
		close(l.flushStop)
	}
	l.mu.Unlock()
	if l.flushDone != nil {
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.noteSync(l.f.Sync())
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs the log's directory so a rename or creation inside it is
// durable.
func (l *Log) syncDir() error {
	if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
