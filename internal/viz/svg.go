// Package viz renders road networks and trajectories to standalone SVG —
// enough to reproduce the paper's Fig. 1 (forged trajectories projected on
// the map next to their reference routes) without any graphics dependency.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"trajforge/internal/geo"
	"trajforge/internal/roadnet"
)

// Style describes how one polyline layer is drawn.
type Style struct {
	Stroke  string
	Width   float64
	Dashed  bool
	Opacity float64 // 0 means 1.0
	// Markers draws a dot at every vertex.
	Markers bool
}

// Layer is one set of polylines sharing a style and a legend label.
type Layer struct {
	Label string
	Lines [][]geo.Point
	Style Style
}

// Scene is a renderable collection of layers.
type Scene struct {
	Title  string
	layers []Layer
}

// NewScene returns an empty scene.
func NewScene(title string) *Scene { return &Scene{Title: title} }

// AddRoads adds the road network as a background layer.
func (s *Scene) AddRoads(g *roadnet.Graph) {
	lines := make([][]geo.Point, 0, g.NumEdges()/2)
	for _, e := range g.Edges() {
		if e.From > e.To {
			continue // draw each undirected pair once
		}
		lines = append(lines, []geo.Point{g.Node(e.From).Pos, g.Node(e.To).Pos})
	}
	s.layers = append(s.layers, Layer{
		Label: "roads",
		Lines: lines,
		Style: Style{Stroke: "#c9c9c9", Width: 1.4},
	})
}

// AddPath adds one trajectory or route polyline.
func (s *Scene) AddPath(label string, pts []geo.Point, style Style) {
	s.layers = append(s.layers, Layer{Label: label, Lines: [][]geo.Point{pts}, Style: style})
}

// bounds returns the bounding box over all layers.
func (s *Scene) bounds() (min, max geo.Point, ok bool) {
	min = geo.Point{X: math.Inf(1), Y: math.Inf(1)}
	max = geo.Point{X: math.Inf(-1), Y: math.Inf(-1)}
	for _, l := range s.layers {
		for _, line := range l.Lines {
			for _, p := range line {
				min.X = math.Min(min.X, p.X)
				min.Y = math.Min(min.Y, p.Y)
				max.X = math.Max(max.X, p.X)
				max.Y = math.Max(max.Y, p.Y)
			}
		}
	}
	return min, max, !math.IsInf(min.X, 1)
}

// Render writes the scene as a standalone SVG of the given pixel width
// (height follows the aspect ratio). It returns an error for an empty
// scene or a non-positive width.
func (s *Scene) Render(w io.Writer, pixelWidth float64) error {
	if pixelWidth <= 0 {
		return fmt.Errorf("viz: pixel width %g must be positive", pixelWidth)
	}
	min, max, ok := s.bounds()
	if !ok {
		return fmt.Errorf("viz: scene %q is empty", s.Title)
	}
	const pad = 12 // world-units padding
	min.X -= pad
	min.Y -= pad
	max.X += pad
	max.Y += pad
	worldW := max.X - min.X
	worldH := max.Y - min.Y
	if worldW <= 0 {
		worldW = 1
	}
	if worldH <= 0 {
		worldH = 1
	}
	scale := pixelWidth / worldW
	pixelHeight := worldH * scale

	// SVG Y grows downward; world Y grows northward, so flip.
	tx := func(p geo.Point) (float64, float64) {
		return (p.X - min.X) * scale, (max.Y - p.Y) * scale
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		pixelWidth, pixelHeight, pixelWidth, pixelHeight)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if s.Title != "" {
		fmt.Fprintf(&b, `<text x="10" y="18" font-family="sans-serif" font-size="14">%s</text>`+"\n",
			escape(s.Title))
	}

	legendY := 38.0
	for _, l := range s.layers {
		style := l.Style
		if style.Width == 0 {
			style.Width = 1.5
		}
		opacity := style.Opacity
		if opacity == 0 {
			opacity = 1
		}
		dash := ""
		if style.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		for _, line := range l.Lines {
			if len(line) < 2 {
				continue
			}
			var pts []string
			for _, p := range line {
				x, y := tx(p)
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f" stroke-opacity="%.2f"%s/>`+"\n",
				strings.Join(pts, " "), style.Stroke, style.Width, opacity, dash)
			if style.Markers {
				for _, p := range line {
					x, y := tx(p)
					fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
						x, y, style.Width*1.2, style.Stroke, opacity)
				}
			}
		}
		if l.Label != "" && l.Label != "roads" {
			fmt.Fprintf(&b, `<line x1="10" y1="%.0f" x2="34" y2="%.0f" stroke="%s" stroke-width="%.1f"%s/>`+"\n",
				legendY, legendY, style.Stroke, style.Width, dash)
			fmt.Fprintf(&b, `<text x="40" y="%.0f" font-family="sans-serif" font-size="12">%s</text>`+"\n",
				legendY+4, escape(l.Label))
			legendY += 18
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
