package viz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"trajforge/internal/geo"
	"trajforge/internal/roadnet"
)

func TestRenderBasicScene(t *testing.T) {
	g, err := roadnet.Generate(rand.New(rand.NewSource(1)), roadnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScene("Fig. 1 — attack example")
	s.AddRoads(g)
	s.AddPath("historical trajectory", []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 80}},
		Style{Stroke: "#1f77b4", Width: 2})
	s.AddPath("forged trajectory", []geo.Point{{X: 0, Y: 2}, {X: 98, Y: 3}, {X: 103, Y: 82}},
		Style{Stroke: "#d62728", Width: 2, Dashed: true, Markers: true})

	var buf bytes.Buffer
	if err := s.Render(&buf, 800); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "historical trajectory", "forged trajectory",
		"stroke-dasharray", "circle",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// The title must be present and escaped content must not break markup.
	if !strings.Contains(out, "Fig. 1") {
		t.Fatal("title missing")
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	empty := NewScene("empty")
	if err := empty.Render(&buf, 800); err == nil {
		t.Fatal("empty scene must error")
	}
	s := NewScene("x")
	s.AddPath("p", []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, Style{Stroke: "red"})
	if err := s.Render(&buf, 0); err == nil {
		t.Fatal("zero width must error")
	}
}

func TestRenderEscapesLabels(t *testing.T) {
	s := NewScene(`<script>"evil" & co</script>`)
	s.AddPath(`a<b>"c"&d`, []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 5}}, Style{Stroke: "blue"})
	var buf bytes.Buffer
	if err := s.Render(&buf, 400); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<script>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestRenderDegenerateGeometry(t *testing.T) {
	// A single-point "line" and identical points must not divide by zero.
	s := NewScene("degenerate")
	s.AddPath("dot", []geo.Point{{X: 5, Y: 5}}, Style{Stroke: "green"})
	s.AddPath("flat", []geo.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}, Style{Stroke: "black"})
	var buf bytes.Buffer
	if err := s.Render(&buf, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG produced")
	}
}
