// Command render reproduces the paper's Fig. 1: it runs both forgery
// scenarios in a simulated city and writes SVG maps showing the road
// network, the reference route/trajectory, and the forged trajectory.
//
// Usage:
//
//	render -out fig1_replay.svg -scenario replay
//	render -out fig1_navigation.svg -scenario navigation
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"flag"

	"trajforge"
	"trajforge/internal/attack"
	"trajforge/internal/viz"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "render:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "replay", "attack scenario: replay or navigation")
	out := fs.String("out", "fig1.svg", "output SVG path")
	seed := fs.Int64("seed", 1, "seed")
	iterations := fs.Int("iterations", 500, "C&W budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scenario trajforge.Scenario
	switch *scenarioName {
	case "replay":
		scenario = trajforge.ScenarioReplay
	case "navigation":
		scenario = trajforge.ScenarioNavigation
	default:
		return fmt.Errorf("unknown scenario %q", *scenarioName)
	}

	fmt.Fprintln(stdout, "building scenario...")
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 400, Height: 320, BlockSize: 65, NumAPs: 1, Seed: *seed,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
	const points = 40

	var reals, fakes []*trajforge.Trajectory
	for tries := 0; len(reals) < 50 && tries < 2000; tries++ {
		from := trajforge.PlanePoint{X: 10 + rng.Float64()*380, Y: 10 + rng.Float64()*300}
		to := trajforge.PlanePoint{X: 10 + rng.Float64()*380, Y: 10 + rng.Float64()*300}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking, Points: points, Start: start,
		})
		if err != nil || trip.Upload.Traj.Len() != points {
			continue
		}
		clean, err := city.NavigationFake(from, to, trajforge.ModeWalking, points, start, time.Second)
		if err != nil || clean.Len() != points {
			continue
		}
		reals = append(reals, trip.Upload.Traj)
		fakes = append(fakes, attack.NaiveNavigation(rng, clean))
	}
	if len(reals) < 50 {
		return fmt.Errorf("could not assemble corpus")
	}
	target, err := trajforge.TrainTargetClassifier(reals, fakes, 16, 25, *seed+2)
	if err != nil {
		return err
	}

	ref := reals[0]
	cfg := trajforge.DefaultForgeryConfig(scenario)
	cfg.Iterations = *iterations
	cfg.Seed = *seed + 3
	refLabel := "historical trajectory"
	if scenario == trajforge.ScenarioReplay {
		cfg.MinDPerMeter = 1.2
	} else {
		refLabel = "navigation route sample"
		ref, err = city.NavigationFake(ref.Start().Pos, ref.End().Pos,
			trajforge.ModeWalking, points, start, time.Second)
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(stdout, "forging...")
	forger := trajforge.NewForger(target, trajforge.FeatureDistAngle)
	res, err := forger.Forge(ref, cfg, false)
	if err != nil {
		return err
	}
	if !res.Success {
		return fmt.Errorf("attack did not converge; try more iterations")
	}

	scene := viz.NewScene(fmt.Sprintf("Fig. 1 (%s attack): P(real)=%.2f, DTW=%.2f/m",
		scenario, res.ProbReal, res.DTW/ref.Length()))
	scene.AddRoads(city.Nav.Graph())
	scene.AddPath(refLabel, ref.Positions(), viz.Style{Stroke: "#1f77b4", Width: 2.2})
	scene.AddPath("forged trajectory", res.Forged.Positions(),
		viz.Style{Stroke: "#d62728", Width: 2.2, Dashed: true, Markers: true})

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer f.Close()
	if err := scene.Render(f, 900); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
