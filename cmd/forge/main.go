// Command forge runs the paper's C&W trajectory forgery attack end to end
// on a self-contained scenario: it builds a city, trains the target
// classifier C on real-vs-naive-fake trajectories, then forges a trajectory
// in the chosen scenario and reports whether the target (and a transfer
// XGBoost model) detects it.
//
// Usage:
//
//	forge -scenario replay -iterations 800 -out forged.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"trajforge"
	"trajforge/internal/attack"
	"trajforge/internal/detect"
	"trajforge/internal/trajectory"
	"trajforge/internal/xgb"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "forge:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("forge", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "replay", "attack scenario: replay or navigation")
	iterations := fs.Int("iterations", 800, "C&W optimization budget")
	trips := fs.Int("trips", 60, "training trajectories per class")
	points := fs.Int("points", 40, "fixes per trajectory")
	seed := fs.Int64("seed", 1, "seed")
	out := fs.String("out", "", "write the forged trajectory as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scenario trajforge.Scenario
	switch *scenarioName {
	case "replay":
		scenario = trajforge.ScenarioReplay
	case "navigation":
		scenario = trajforge.ScenarioNavigation
	default:
		return fmt.Errorf("unknown scenario %q", *scenarioName)
	}

	fmt.Fprintln(stdout, "building city and corpus...")
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 500, Height: 400, BlockSize: 70, NumAPs: 1, Seed: *seed,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)

	var reals, fakes []*trajforge.Trajectory
	for tries := 0; len(reals) < *trips && tries < *trips*30; tries++ {
		from := trajforge.PlanePoint{X: rng.Float64() * 500, Y: rng.Float64() * 400}
		to := trajforge.PlanePoint{X: rng.Float64() * 500, Y: rng.Float64() * 400}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking, Points: *points, Start: start,
		})
		if err != nil || trip.Upload.Traj.Len() != *points {
			continue
		}
		clean, err := city.NavigationFake(from, to, trajforge.ModeWalking, *points, start, time.Second)
		if err != nil || clean.Len() != *points {
			continue
		}
		reals = append(reals, trip.Upload.Traj)
		fakes = append(fakes, attack.NaiveNavigation(rng, clean))
	}
	if len(reals) < *trips {
		return fmt.Errorf("only %d/%d usable trips", len(reals), *trips)
	}

	fmt.Fprintln(stdout, "training target classifier C...")
	target, err := trajforge.TrainTargetClassifier(reals, fakes, 16, 30, *seed+2)
	if err != nil {
		return err
	}

	// Transfer model: XGBoost on motion summaries.
	xgbDet, err := detect.TrainXGBMotion(reals, fakes, xgb.Config{
		Rounds: 50, MaxDepth: 4, LearningRate: 0.25, Seed: *seed + 3,
	})
	if err != nil {
		return err
	}

	ref := reals[0]
	cfg := trajforge.DefaultForgeryConfig(scenario)
	cfg.Iterations = *iterations
	cfg.Seed = *seed + 4
	if scenario == trajforge.ScenarioReplay {
		cfg.MinDPerMeter = 1.2
	} else {
		var err error
		ref, err = city.NavigationFake(ref.Start().Pos, ref.End().Pos,
			trajforge.ModeWalking, *points, start, time.Second)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "forging (%v scenario, %d iterations)...\n", scenario, *iterations)
	began := time.Now()
	forger := trajforge.NewForger(target, trajforge.FeatureDistAngle)
	res, err := forger.Forge(ref, cfg, false)
	if err != nil {
		return err
	}
	if !res.Success {
		return fmt.Errorf("no adversarial trajectory found within %d iterations", *iterations)
	}

	fmt.Fprintf(stdout, "forged in %s (first adversarial at iteration %d)\n",
		time.Since(began).Round(time.Millisecond), res.FirstAdversarialIter)
	fmt.Fprintf(stdout, "  target C:          P(real) = %.3f  -> %s\n", res.ProbReal, verdict(res.ProbReal >= 0.5))
	transferP := xgbDet.ProbReal(res.Forged)
	fmt.Fprintf(stdout, "  transfer XGBoost:  P(real) = %.3f  -> %s\n", transferP, verdict(transferP >= 0.5))
	fmt.Fprintf(stdout, "  DTW to reference:  %.1f m-steps (%.2f per route metre)\n",
		res.DTW, res.DTW/ref.Length())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		if err := trajectory.WriteCSV(f, res.Forged); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "forged trajectory written to %s\n", *out)
	}
	return nil
}

func verdict(passedAsReal bool) string {
	if passedAsReal {
		return "ESCAPES detection"
	}
	return "caught"
}
