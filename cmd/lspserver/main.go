// Command lspserver runs the cloud-side trajectory verification service.
// On startup it simulates a commercial area, collects a crowdsourced RSSI
// history, trains the WiFi detector, and serves the verification API:
//
//	POST /v1/trajectory   upload a trajectory (JSON; see internal/server)
//	GET  /v1/stats        provider counters
//	GET  /v1/health       liveness
//
// Usage:
//
//	lspserver -addr :8742 [-seed 1] [-uploads 300]
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flag"

	"trajforge"
	"trajforge/internal/geo"
	"trajforge/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lspserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lspserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8742", "listen address")
	seed := fs.Int64("seed", 1, "simulation seed")
	uploads := fs.Int("uploads", 300, "crowdsourced uploads to bootstrap the detector")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("bootstrapping provider state (area, history, detector)...")
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 300, Height: 240, BlockSize: 60, NumAPs: 350, Seed: *seed,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	start := time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC)

	var hist []*trajforge.Upload
	for tries := 0; len(hist) < *uploads && tries < *uploads*30; tries++ {
		from := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		to := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking,
			Points: 30, Start: start, CollectScans: true,
		})
		if err != nil || trip.Upload.Traj.Len() != 30 {
			continue
		}
		hist = append(hist, trip.Upload)
	}
	if len(hist) < *uploads {
		return fmt.Errorf("bootstrapped only %d/%d uploads", len(hist), *uploads)
	}

	nStore := len(hist) * 3 / 4
	store, err := trajforge.NewRSSIStore(hist[:nStore])
	if err != nil {
		return err
	}
	var fakes []*trajforge.Upload
	for _, u := range hist[:nStore/2] {
		f, err := trajforge.ForgeUploadRSSI(rng, u, 1.2)
		if err != nil {
			return err
		}
		fakes = append(fakes, f)
	}
	det, err := trajforge.TrainWiFiDetector(store, hist[nStore:], fakes)
	if err != nil {
		return err
	}
	replay, err := trajforge.NewReplayChecker(1.2)
	if err != nil {
		return err
	}
	for _, u := range hist[:nStore] {
		replay.AddHistory(u.Traj)
	}

	pr := geo.NewProjection(geo.LatLon{Lat: 32.06, Lon: 118.79})
	svc, err := trajforge.NewVerificationServer(server.Config{
		Projection: pr,
		Replay:     replay,
		WiFi:       det,
	})
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s (history: %d uploads, %d RSSI records)\n",
		*addr, nStore, store.Len())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight uploads.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		fmt.Println("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		printStats(svc.Stats())
		return nil
	}
}

// printStats summarises the session: counters plus where verification time
// went, per pipeline stage.
func printStats(st server.Stats) {
	fmt.Printf("session: %d accepted, %d rejected, %d in history\n",
		st.Accepted, st.Rejected, st.History)
	for _, name := range []string{"rules", "route", "replay", "motion", "wifi"} {
		sg := st.Stages[name]
		if sg.Count == 0 {
			continue
		}
		fmt.Printf("  stage %-6s %6d runs, avg %8.1f us, total %d ms\n",
			name, sg.Count, sg.AvgMicros, sg.TotalMicros/1000)
	}
}
