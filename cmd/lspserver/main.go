// Command lspserver runs the cloud-side trajectory verification service.
// On startup it simulates a commercial area, collects a crowdsourced RSSI
// history, trains the WiFi detector, and serves the verification API:
//
//	POST /v1/trajectory     upload a trajectory (JSON; see internal/server)
//	POST /v1/session/open   open a streaming verification session
//	POST /v1/session/append append a chunk; acknowledged with a provisional verdict
//	POST /v1/session/close  finalise; verdict bit-identical to /v1/trajectory
//	GET  /v1/stats          provider counters
//	GET  /v1/health         liveness / readiness / degradation
//
// With -data-dir the provider state is durable: accepted uploads are
// journaled to a write-ahead log before the next upload is served, the
// full state is snapshotted on compaction and shutdown, and a restart
// recovers counters, history, and the crowdsourced store bit-identically
// — including uploads accepted moments before a crash. A circuit breaker
// guards the WAL: when appends or syncs start failing the service flips
// to degraded (uploads shed with 503, /v1/health non-200) instead of
// acknowledging writes that would not survive a crash, and self-heals
// via half-open compaction probes once the disk recovers.
//
// Overload control: -max-inflight bounds concurrent verification work,
// -queue-depth bounds the FIFO wait queue behind it, and -upload-timeout
// caps per-upload processing; excess load is shed with 429 + Retry-After.
//
// Streaming sessions are bounded by -max-sessions concurrently open
// sessions, evicted after -session-ttl (or 90s idle), and score a
// provisional verdict over a sliding window of -session-window points.
//
// Cluster mode splits the RSSI store across shard-node processes. A node
// process serves tiles over the shard-transport RPC and keeps its own
// WAL/snapshot lineage; a coordinator process runs the full verification
// service with the distributed store as its backend, forwarding feature
// extraction to the nodes that own each tile:
//
//	lspserver -node-id n1 -cluster-listen 127.0.0.1:7101 [-data-dir DIR]
//	lspserver -join n1=127.0.0.1:7101,n2=127.0.0.1:7102,n3=127.0.0.1:7103
//
// With -replicate every tile also lives on a follower node: ingestion
// dual-writes, reads fail over when the primary is unreachable, and
// -repair-every re-replicates a dead node's tiles in the background while
// -rebalance-every migrates the hottest tile off the most-loaded node.
// -cluster-data-dir gives the coordinator its own WAL/snapshot lineage so
// a restart recovers the canonical record log and assignment epoch from
// disk instead of replaying the bootstrap corpus. A standby coordinator
// (-lease FILE -standby) waits for the active's lease to lapse, then takes
// over at a higher fencing epoch:
//
//	lspserver -join ... -replicate -cluster-data-dir DIR \
//	          -lease /shared/coord.lease -coord-id c1
//	lspserver -join ... -replicate -cluster-data-dir DIR2 \
//	          -lease /shared/coord.lease -coord-id c2 -standby
//
// Usage:
//
//	lspserver -addr :8742 [-seed 1] [-uploads 300] [-data-dir DIR] [-sharded]
//	          [-node-id ID -cluster-listen ADDR | -join ID=ADDR,...]
//	          [-replicate] [-cluster-data-dir DIR] [-repair-every 0]
//	          [-rebalance-every 0] [-lease FILE] [-lease-ttl 5s]
//	          [-coord-id ID] [-standby]
//	          [-max-inflight N] [-queue-depth N] [-upload-timeout 10s]
//	          [-max-sessions N] [-session-ttl 10m] [-session-window N]
//	          [-trust] [-quarantine-k N] [-trust-floor F] [-trust-promote F]
//	          [-trust-refresh N] [-drift-window N]
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"flag"

	"trajforge"
	"trajforge/internal/cluster"
	"trajforge/internal/dataset"
	"trajforge/internal/geo"
	"trajforge/internal/resilience"
	"trajforge/internal/rssimap"
	"trajforge/internal/server"
	"trajforge/internal/shardstore"
	"trajforge/internal/stream"
	"trajforge/internal/trust"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lspserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lspserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8742", "listen address")
	seed := fs.Int64("seed", 1, "simulation seed")
	uploads := fs.Int("uploads", 300, "crowdsourced uploads to bootstrap the detector")
	dataDir := fs.String("data-dir", "", "directory for the WAL and snapshots (empty = in-memory only)")
	sharded := fs.Bool("sharded", false, "partition the RSSI store by geographic tile")
	nodeID := fs.String("node-id", "", "run as a cluster shard node with this member id (requires -cluster-listen)")
	clusterListen := fs.String("cluster-listen", "", "shard-transport listen address for node mode")
	join := fs.String("join", "", "run as a cluster coordinator over these nodes (comma-separated id=addr pairs)")
	replicate := fs.Bool("replicate", false, "place a follower replica of every tile (requires -join with >= 2 nodes)")
	clusterDataDir := fs.String("cluster-data-dir", "", "directory for the coordinator's own WAL/snapshots (requires -join)")
	repairEvery := fs.Duration("repair-every", 0,
		"re-replicate dead nodes' tiles in the background at this interval (0 = off; requires -replicate)")
	rebalanceEvery := fs.Duration("rebalance-every", 0,
		"migrate the hottest tile off the most-loaded node at this interval (0 = off; requires -join)")
	leasePath := fs.String("lease", "", "coordinator lease file shared between active and standby (requires -join)")
	leaseTTL := fs.Duration("lease-ttl", 5*time.Second, "coordinator lease time-to-live")
	coordID := fs.String("coord-id", "coord1", "coordinator identity written to the lease file")
	standby := fs.Bool("standby", false, "wait for the active coordinator's lease to lapse before taking over")
	maxInflight := fs.Int("max-inflight", 4*runtime.NumCPU(),
		"concurrent uploads admitted to the pipeline (0 = unbounded)")
	queueDepth := fs.Int("queue-depth", 0,
		"admission wait-queue bound (0 = 2x max-inflight)")
	uploadTimeout := fs.Duration("upload-timeout", 10*time.Second,
		"per-upload processing deadline (0 = none)")
	breakerCooldown := fs.Duration("breaker-cooldown", time.Second,
		"persistence breaker open period before a half-open heal probe")
	maxSessions := fs.Int("max-sessions", 1024,
		"concurrently open streaming verification sessions")
	sessionTTL := fs.Duration("session-ttl", 10*time.Minute,
		"absolute streaming session lifetime")
	sessionWindow := fs.Int("session-window", 16,
		"sliding-window length (points) of the provisional streaming verdict")
	trustOn := fs.Bool("trust", false,
		"route accepted uploads through the poisoning-resistant trust pipeline")
	quarantineK := fs.Int("quarantine-k", 3,
		"distinct contributors required to promote a quarantined point (<=1 disables staging)")
	trustFloor := fs.Float64("trust-floor", 0.05,
		"minimum contributor trust weight in the store's density term")
	trustPromote := fs.Float64("trust-promote", 0.8,
		"trust weight above which a contributor's points skip quarantine")
	trustRefresh := fs.Int("trust-refresh", 32,
		"accepted uploads between pushes of the trust-weight table into the store")
	driftWindow := fs.Int("drift-window", 64,
		"records per tile between drift-alarm histogram rotations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Node mode: no HTTP service, no bootstrap simulation — just the shard
	// node serving tiles until signalled.
	if *nodeID != "" {
		if *clusterListen == "" {
			return errors.New("-node-id requires -cluster-listen")
		}
		return runNode(*nodeID, *clusterListen, *dataDir)
	}
	if *clusterListen != "" {
		return errors.New("-cluster-listen requires -node-id")
	}
	clusterNodes, err := parseJoin(*join)
	if err != nil {
		return err
	}
	if clusterNodes != nil && *sharded {
		return errors.New("-join and -sharded are mutually exclusive backends")
	}
	if clusterNodes == nil {
		switch {
		case *replicate:
			return errors.New("-replicate requires -join")
		case *clusterDataDir != "":
			return errors.New("-cluster-data-dir requires -join")
		case *leasePath != "" || *standby:
			return errors.New("-lease/-standby require -join")
		case *repairEvery != 0 || *rebalanceEvery != 0:
			return errors.New("-repair-every/-rebalance-every require -join")
		}
	}
	if *repairEvery != 0 && !*replicate {
		return errors.New("-repair-every requires -replicate")
	}

	// The lease gates store creation: building the Store fences the previous
	// coordinator off the nodes, so a standby must not build one until the
	// active's claim has lapsed. Liveness only — safety is the epoch fence.
	var lease *cluster.Lease
	leaseLost := make(chan struct{})
	if *leasePath != "" {
		lease, err = cluster.NewLease(nil, *leasePath, *coordID, *leaseTTL)
		if err != nil {
			return err
		}
		if *standby {
			fmt.Printf("standby %s: waiting for lease %s...\n", *coordID, *leasePath)
			for {
				if err := lease.Acquire(time.Now()); err == nil {
					break
				} else if !errors.Is(err, cluster.ErrLeaseHeld) {
					return err
				}
				time.Sleep(*leaseTTL / 3)
			}
			fmt.Printf("standby %s: lease acquired, taking over\n", *coordID)
		} else if err := lease.Acquire(time.Now()); err != nil {
			return fmt.Errorf("another coordinator is active: %w", err)
		}
	}

	// Open the durability layer first: recovered state decides below
	// whether the store is seeded from disk or from the bootstrap corpus.
	var persist *server.Persistence
	var recovered *server.RecoveredState
	if *dataDir != "" {
		p, err := server.OpenPersistence(*dataDir, server.PersistOptions{
			// Fail closed on WAL trouble: shed uploads with 503 instead of
			// issuing acks that would not survive a crash.
			Breaker: &resilience.BreakerConfig{Cooldown: *breakerCooldown},
		})
		if err != nil {
			return err
		}
		persist = p
		recovered = p.Recovered()
		if !recovered.Empty() {
			fmt.Printf("recovered from %s: %d accepted, %d rejected, %d records, %d WAL uploads\n",
				*dataDir, recovered.Accepted, recovered.Rejected,
				len(recovered.Records), len(recovered.Uploads))
		}
	}

	// The bootstrap simulation is deterministic in -seed, so the training
	// corpus (and the detector) is reproducible across restarts even when
	// the store itself comes from disk.
	fmt.Println("bootstrapping provider state (area, history, detector)...")
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 300, Height: 240, BlockSize: 60, NumAPs: 350, Seed: *seed,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	start := time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC)

	var hist []*trajforge.Upload
	for tries := 0; len(hist) < *uploads && tries < *uploads*30; tries++ {
		from := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		to := trajforge.PlanePoint{X: 10 + rng.Float64()*280, Y: 10 + rng.Float64()*220}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking,
			Points: 30, Start: start, CollectScans: true,
		})
		if err != nil || trip.Upload.Traj.Len() != 30 {
			continue
		}
		hist = append(hist, trip.Upload)
	}
	if len(hist) < *uploads {
		return fmt.Errorf("bootstrapped only %d/%d uploads", len(hist), *uploads)
	}

	// Seed the store: recovered records when the data directory holds a
	// snapshot (it already contains the bootstrap of the first run), the
	// fresh bootstrap corpus otherwise. Uploads replayed from the WAL are
	// applied later through Service.Restore, after the service exists.
	nStore := len(hist) * 3 / 4
	records := dataset.Records(hist[:nStore])
	if recovered != nil && !recovered.Empty() {
		records = recovered.Records
	}
	var store trajforge.RSSIBackend
	var cs *cluster.Store
	switch {
	case clusterNodes != nil:
		cs, err = cluster.NewStore(cluster.Options{
			Shard:     shardstore.DefaultConfig(),
			Nodes:     clusterNodes,
			Replicate: *replicate,
			Dir:       *clusterDataDir,
		})
		if err != nil {
			return err
		}
		defer cs.Close()
		// The coordinator owns the canonical log; the bootstrap (or the
		// recovered snapshot) is replicated out to the shard nodes tile by
		// tile, idempotently — a node that already holds a prefix from a
		// previous coordinator incarnation skips it via the seq gate. A
		// coordinator restarting over -cluster-data-dir recovered the log
		// from its own WAL already; feeding the bootstrap again is absorbed
		// the same way, except the log itself which dedups nothing — so skip
		// the re-feed entirely when the WAL recovered records.
		if cs.Len() == 0 {
			cs.Add(records)
		} else {
			fmt.Printf("cluster: coordinator WAL recovered %d records, skipping bootstrap feed\n", cs.Len())
		}
		mode := "primary-only"
		if *replicate {
			mode = "replicated"
		}
		fmt.Printf("cluster: %d nodes, epoch %d, %s\n", len(clusterNodes), cs.Assignment().Epoch, mode)
		store = cs
	case *sharded:
		store, err = shardstore.New(shardstore.DefaultConfig(), records)
	default:
		store, err = rssimap.NewStore(rssimap.DefaultConfig(), records)
	}
	if err != nil {
		return err
	}
	var fakes []*trajforge.Upload
	for _, u := range hist[:nStore/2] {
		f, err := trajforge.ForgeUploadRSSI(rng, u, 1.2)
		if err != nil {
			return err
		}
		fakes = append(fakes, f)
	}
	det, err := trajforge.TrainWiFiDetector(store, hist[nStore:], fakes)
	if err != nil {
		return err
	}
	replay, err := trajforge.NewReplayChecker(1.2)
	if err != nil {
		return err
	}
	for _, u := range hist[:nStore] {
		replay.AddHistory(u.Traj)
	}

	var trustCfg *trust.Config
	if *trustOn {
		tc := trust.DefaultConfig()
		tc.Quarantine.K = *quarantineK
		tc.Quarantine.PromoteTrust = *trustPromote
		tc.Ledger.Floor = *trustFloor
		tc.WeightRefresh = *trustRefresh
		tc.Drift.Window = *driftWindow
		trustCfg = &tc
	}

	pr := geo.NewProjection(geo.LatLon{Lat: 32.06, Lon: 118.79})
	svc, err := trajforge.NewVerificationServer(server.Config{
		Projection:     pr,
		Replay:         replay,
		WiFi:           det,
		IngestAccepted: persist != nil || trustCfg != nil,
		Persist:        persist,
		MaxInFlight:    *maxInflight,
		QueueDepth:     *queueDepth,
		UploadTimeout:  *uploadTimeout,
		Trust:          trustCfg,
		Stream: &stream.Config{
			MaxSessions: *maxSessions,
			TTL:         *sessionTTL,
			Window:      *sessionWindow,
		},
	})
	if err != nil {
		return err
	}
	if persist != nil {
		svc.Restore(recovered)
		if recovered.Empty() {
			// First run on this directory: snapshot the bootstrap store so
			// a crash before the first compaction can still recover it.
			if err := persist.Compact(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("listening on %s (history: %d uploads, %d RSSI records)\n",
		*addr, nStore, store.Len())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Body and response deadlines: a slow-loris body or a stalled
		// reader cannot pin a connection (and its goroutine) forever.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
		// Reap dead keep-alive connections.
		IdleTimeout: 2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight uploads, flush the
	// WAL queue, and take the final snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Renew the coordinator lease at a third of its ttl; losing it means a
	// standby fenced us off the nodes, so stop serving rather than answer
	// from a store the cluster no longer listens to.
	if lease != nil {
		interval := *leaseTTL / 3
		if interval <= 0 {
			interval = time.Millisecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := lease.Renew(time.Now()); err != nil {
						fmt.Fprintln(os.Stderr, "lspserver: coordinator lease lost:", err)
						close(leaseLost)
						return
					}
				}
			}
		}()
	}
	// Background repair: any node that stays unreachable gets its tiles
	// re-replicated onto the surviving members; a node that merely lagged is
	// healed in place with a resync from the canonical log.
	if cs != nil && *repairEvery > 0 {
		go func() {
			t := time.NewTicker(*repairEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					for _, ns := range cs.Stats().Nodes {
						if !ns.Unsynced {
							continue
						}
						if err := cs.Resync(ns.ID); err == nil {
							fmt.Printf("cluster: resynced lagging node %s\n", ns.ID)
							continue
						}
						if err := cs.Rereplicate(ns.ID); err == nil {
							fmt.Printf("cluster: re-replicated tiles off dead node %s\n", ns.ID)
						}
					}
				}
			}
		}()
	}
	// Background rebalance: one bounded step per tick, each migrating the
	// hottest tile off the most-loaded node when that narrows the spread.
	if cs != nil && *rebalanceEvery > 0 {
		go func() {
			t := time.NewTicker(*rebalanceEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if moved, err := cs.Rebalance(); err == nil && moved {
						fmt.Println("cluster: rebalanced hottest tile off most-loaded node")
					}
				}
			}
		}()
	}
	// Sweep expired streaming sessions so abandoned clients free their
	// admission slots (and their abort verdicts reach the WAL) without
	// waiting for another request to trip over them.
	go func() {
		t := time.NewTicker(15 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				svc.SweepSessions()
			}
		}
	}()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		fmt.Println("shutting down...")
	case <-leaseLost:
		fmt.Println("coordinator lease lost; shutting down...")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	printStats(svc.Stats())
	if err := svc.Close(); err != nil {
		return fmt.Errorf("final snapshot: %w", err)
	}
	if persist != nil {
		fmt.Printf("state persisted to %s\n", *dataDir)
	}
	// Hand the lease back so a standby takes over without waiting out the
	// ttl. A lost lease was already someone else's to keep.
	if lease != nil {
		if err := lease.Release(time.Now()); err != nil {
			fmt.Fprintln(os.Stderr, "lspserver: lease release:", err)
		}
	}
	return nil
}

// runNode serves one cluster shard node until SIGINT/SIGTERM. With a data
// directory the node keeps its own WAL/snapshot lineage and recovers its
// tiles (and journaled assignment epoch) across restarts; the coordinator
// resyncs whatever tail it missed while down.
func runNode(id, listen, dataDir string) error {
	node, err := cluster.NewNode(id, shardstore.DefaultConfig(), cluster.NodeOptions{Dir: dataDir})
	if err != nil {
		return err
	}
	addr, err := node.Listen(listen)
	if err != nil {
		node.Close()
		return err
	}
	if dataDir != "" {
		fmt.Printf("node %s serving shard transport on %s (durable in %s)\n", id, addr, dataDir)
	} else {
		fmt.Printf("node %s serving shard transport on %s (memory-only)\n", id, addr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("node shutting down...")
	// Fold the WAL into a snapshot so the next start replays nothing.
	if dataDir != "" {
		if err := node.Compact(); err != nil {
			node.Close()
			return fmt.Errorf("final compaction: %w", err)
		}
	}
	return node.Close()
}

// parseJoin parses the -join value: comma-separated id=addr pairs.
func parseJoin(join string) (map[string]string, error) {
	if join == "" {
		return nil, nil
	}
	nodes := make(map[string]string)
	for _, pair := range strings.Split(join, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("malformed -join entry %q (want id=addr)", pair)
		}
		if _, dup := nodes[id]; dup {
			return nil, fmt.Errorf("duplicate node id %q in -join", id)
		}
		nodes[id] = addr
	}
	return nodes, nil
}

// printStats summarises the session: counters plus where verification time
// went, per pipeline stage, plus durability and sharding state when on.
func printStats(st server.Stats) {
	fmt.Printf("session: %d accepted, %d rejected, %d in history\n",
		st.Accepted, st.Rejected, st.History)
	for _, name := range []string{"decode", "rules", "route", "replay", "motion", "features", "score", "persist"} {
		sg := st.Stages[name]
		if sg.Count == 0 {
			continue
		}
		fmt.Printf("  stage %-8s %6d runs, avg %8.1f us, p99 %6d us, total %d ms\n",
			name, sg.Count, sg.AvgMicros, sg.P99Micros, sg.TotalMicros/1000)
	}
	if a := st.Admission; a != nil {
		fmt.Printf("  admission: %d admitted, %d shed (queue full), %d shed (deadline), %d queue timeouts\n",
			a.Admitted, a.ShedQueueFull, a.ShedDeadline, a.DeadlineExceeded)
	}
	if st.InternalErrors+st.DeadlineRejects+st.DegradedRejects > 0 {
		fmt.Printf("  errors: %d internal, %d deadline, %d degraded rejects\n",
			st.InternalErrors, st.DeadlineRejects, st.DegradedRejects)
	}
	if p := st.Persistence; p != nil {
		fmt.Printf("  wal: %d frames, %d bytes, generation %d\n",
			p.WALFrames, p.WALBytes, p.Generation)
		if b := p.Breaker; b != nil {
			fmt.Printf("  breaker: %s, %d opens, %d closes, %d probes\n",
				b.State, b.Opens, b.Closes, b.Probes)
		}
	}
	if ss := st.Sessions; ss != nil && ss.Opened > 0 {
		fmt.Printf("  sessions: %d opened, %d closed, %d early-exits, %d expired, %d chunks (%d points scored)\n",
			ss.Opened, ss.Closed, ss.EarlyExits, ss.Expired, ss.Chunks, ss.PointsScored)
	}
	if sh := st.Shards; sh != nil {
		fmt.Printf("  shards: %d tiles, %d records (%d stored with halo), busiest %d\n",
			sh.Shards, sh.Records, sh.StoredRecords, sh.MaxShardRecords)
	}
	if cl := st.Cluster; cl != nil {
		fmt.Printf("  cluster: epoch %d, %d records, %d forwarded, %d halo updates, %d migrations\n",
			cl.Epoch, cl.Records, cl.Forwarded, cl.HaloUpdates, cl.Migrations)
		if cl.Replicated {
			fmt.Printf("  replication: %d replica reads, %d repairs, %d rebalances, %d retried calls, %d expired rejects\n",
				cl.ReplicaReads, cl.Repairs, cl.Rebalances, cl.RetriedCalls, cl.ExpiredRejects)
		}
		if cl.WALFrames > 0 || cl.Generation > 0 {
			fmt.Printf("  coordinator wal: %d frames, %d bytes, generation %d\n",
				cl.WALFrames, cl.WALBytes, cl.Generation)
		}
		if cl.Degraded {
			fmt.Printf("  DEGRADED: %s\n", cl.DegradedReason)
		}
		for _, ns := range cl.Nodes {
			state := "synced"
			if ns.Unsynced {
				state = "UNSYNCED"
			}
			fmt.Printf("    node %-8s %4d tiles (+%d follower), %6d entries, %s\n",
				ns.ID, ns.Tiles, ns.FollowerTiles, ns.Entries, state)
		}
	}
}
