// Command trajgen generates simulated GPS trajectories — the data a
// location service provider would collect — and writes them as CSV or the
// [lat, lon, time] wire JSON.
//
// Usage:
//
//	trajgen -n 10 -mode walking -points 60 -format json -out trips.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"trajforge"
	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trajgen:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("trajgen", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of trajectories")
	modeName := fs.String("mode", "walking", "transport mode: walking, cycling or driving")
	points := fs.Int("points", 60, "fixes per trajectory")
	intervalSec := fs.Float64("interval", 1, "seconds between fixes")
	format := fs.String("format", "csv", "output format: csv, json or geojson")
	out := fs.String("out", "", "output file (default stdout)")
	seed := fs.Int64("seed", 1, "simulation seed")
	fake := fs.Bool("fake", false, "emit constant-speed navigation fakes instead of real trajectories")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := trajectory.ParseMode(*modeName)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}

	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 800, Height: 600, BlockSize: 80, NumAPs: 1, Seed: *seed,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	start := time.Date(2022, 7, 1, 8, 0, 0, 0, time.UTC)
	interval := time.Duration(*intervalSec * float64(time.Second))
	pr := geo.NewProjection(geo.LatLon{Lat: 32.06, Lon: 118.79})

	var produced int
	var wireOut []json.RawMessage
	var geoOut []*trajectory.T
	for tries := 0; produced < *n && tries < *n*30; tries++ {
		from := trajforge.PlanePoint{X: rng.Float64() * 800, Y: rng.Float64() * 600}
		to := trajforge.PlanePoint{X: rng.Float64() * 800, Y: rng.Float64() * 600}

		var traj *trajforge.Trajectory
		if *fake {
			traj, err = city.NavigationFake(from, to, mode, *points, start, interval)
			if err != nil {
				continue
			}
		} else {
			trip, err := city.Travel(trajforge.TripConfig{
				From: from, To: to, Mode: mode,
				Points: *points, Start: start, Interval: interval,
			})
			if err != nil {
				continue
			}
			traj = trip.Upload.Traj
		}
		if traj.Len() != *points {
			continue
		}
		traj.ID = fmt.Sprintf("trip-%03d", produced)
		traj.Mode = mode
		produced++

		switch *format {
		case "csv":
			fmt.Fprintf(w, "# %s\n", traj.ID)
			if err := trajectory.WriteCSV(w, traj); err != nil {
				return err
			}
		case "json":
			data, err := trajectory.MarshalJSONWire(traj, pr)
			if err != nil {
				return err
			}
			wireOut = append(wireOut, data)
		case "geojson":
			geoOut = append(geoOut, traj)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if produced < *n {
		return fmt.Errorf("only generated %d/%d trajectories", produced, *n)
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(wireOut)
	case "geojson":
		data, err := trajectory.MarshalGeoJSON(geoOut, pr)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}
