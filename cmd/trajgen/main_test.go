package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, []string{"-n", "2", "-points", "12", "-mode", "walking", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# trip-000") || !strings.Contains(s, "# trip-001") {
		t.Fatalf("missing trip headers in output:\n%s", s)
	}
	if !strings.Contains(s, "x,y,unix_ms") {
		t.Fatal("missing CSV header")
	}
	// 2 headers + 2 CSV headers + 24 rows.
	if lines := strings.Count(strings.TrimSpace(s), "\n") + 1; lines != 28 {
		t.Fatalf("unexpected line count %d", lines)
	}
}

func TestRunJSONToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trips.json")
	var out bytes.Buffer
	err := run(&out, []string{"-n", "1", "-points", "8", "-format", "json", "-out", path, "-seed", "4"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trips []json.RawMessage
	if err := json.Unmarshal(data, &trips); err != nil {
		t.Fatalf("output not a JSON array: %v", err)
	}
	if len(trips) != 1 {
		t.Fatalf("trips = %d", len(trips))
	}
}

func TestRunFakeMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-n", "1", "-points", "10", "-fake", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# trip-000") {
		t.Fatal("fake mode produced no trajectory")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-mode", "hover"}); err == nil {
		t.Fatal("unknown mode must error")
	}
	if err := run(&out, []string{"-format", "xml", "-n", "1", "-points", "8"}); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestRunGeoJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-n", "1", "-points", "8", "-format", "geojson", "-seed", "6"}); err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Type     string            `json:"type"`
		Features []json.RawMessage `json:"features"`
	}
	if err := json.Unmarshal(out.Bytes(), &fc); err != nil {
		t.Fatalf("invalid GeoJSON: %v", err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) != 1 {
		t.Fatalf("collection = %+v", fc)
	}
}
