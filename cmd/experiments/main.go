// Command experiments regenerates the paper's tables and figures from the
// simulation substrates. Each experiment prints an aligned text table; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-scale test|paper] [-run all|table1|fig3|mind|table2|rcal|table3|fig4|fig5|fig6|table4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trajforge/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleName := flag.String("scale", "test", "experiment scale: test (minutes) or paper (tens of minutes)")
	runList := flag.String("run", "all", "comma-separated experiments: table1,fig3,mind,table2,rcal,table3,fig4,fig5,fig6,table4,ablation,gru,devices,poison or all (extensions gru/devices/poison are not in all)")
	poisonOut := flag.String("poison-out", "BENCH_poison.json", "artifact path for the poison experiment result")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "test":
		scale = experiments.TestScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want test or paper)\n", *scaleName)
		return 2
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"] // extensions (gru, devices) must be requested explicitly
	need := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	section := func(title string) func() {
		start := time.Now()
		fmt.Printf("== %s ==\n", title)
		return func() { fmt.Printf("   (%s)\n\n", time.Since(start).Round(time.Millisecond)) }
	}

	// Shared labs, built lazily.
	var mlab *experiments.MotionLab
	var mind *experiments.MinDResult
	var wlab *experiments.WiFiLab

	getMotionLab := func() (*experiments.MotionLab, error) {
		if mlab == nil {
			done := section("building motion lab (corpus + 4 classifiers)")
			lab, err := experiments.NewMotionLab(scale)
			if err != nil {
				return nil, err
			}
			done()
			mlab = lab
		}
		return mlab, nil
	}
	getMinD := func() (*experiments.MinDResult, error) {
		if mind == nil {
			res, err := experiments.MinD(scale)
			if err != nil {
				return nil, err
			}
			mind = res
		}
		return mind, nil
	}
	getWiFiLab := func() (*experiments.WiFiLab, error) {
		if wlab == nil {
			md, err := getMinD()
			if err != nil {
				return nil, err
			}
			done := section("building WiFi lab (3 areas + forged uploads)")
			lab, err := experiments.NewWiFiLab(scale, md)
			if err != nil {
				return nil, err
			}
			done()
			wlab = lab
		}
		return wlab, nil
	}

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}

	if need("mind") {
		res, err := getMinD()
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
	}
	if need("rcal") {
		res, err := experiments.RCal(scale)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
	}
	if need("table1") {
		lab, err := getMotionLab()
		if err != nil {
			return fail(err)
		}
		done := section("Table I")
		fmt.Println(experiments.Table1(lab).Render())
		done()
	}
	if need("fig3") {
		lab, err := getMotionLab()
		if err != nil {
			return fail(err)
		}
		done := section("Fig. 3")
		res, err := experiments.Fig3(lab)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if need("table2") {
		lab, err := getMotionLab()
		if err != nil {
			return fail(err)
		}
		md, err := getMinD()
		if err != nil {
			return fail(err)
		}
		done := section("Table II (C&W attacks)")
		res, err := experiments.Table2(lab, md)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if need("table3") {
		lab, err := getWiFiLab()
		if err != nil {
			return fail(err)
		}
		fmt.Println(experiments.Table3(lab).Render())
	}
	if need("fig4") {
		lab, err := getWiFiLab()
		if err != nil {
			return fail(err)
		}
		done := section("Fig. 4 (radius sweep)")
		res, err := experiments.Fig4(lab, nil)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if need("fig5") {
		lab, err := getWiFiLab()
		if err != nil {
			return fail(err)
		}
		done := section("Fig. 5 (density sweep)")
		res, err := experiments.Fig5(lab, nil)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if need("fig6") {
		lab, err := getWiFiLab()
		if err != nil {
			return fail(err)
		}
		done := section("Fig. 6 (AP density sweep)")
		res, err := experiments.Fig6(lab, nil)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if need("ablation") {
		lab, err := getWiFiLab()
		if err != nil {
			return fail(err)
		}
		done := section("Defense ablation")
		res, err := experiments.DefenseAblation(lab)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if need("gru") {
		lab, err := getMotionLab()
		if err != nil {
			return fail(err)
		}
		md, err := getMinD()
		if err != nil {
			return fail(err)
		}
		done := section("Extension: GRU transfer")
		res, err := experiments.GRUTransfer(lab, md)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if need("devices") {
		md, err := getMinD()
		if err != nil {
			return fail(err)
		}
		done := section("Extension: device heterogeneity")
		res, err := experiments.DeviceRobustness(scale, md, nil)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	if want["poison"] { // artifact-writing extension: explicit opt-in only
		done := section("Extension: Sybil poisoning (undefended vs defended)")
		res, err := experiments.Poison(experiments.PoisonOptions{})
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		if err := res.WriteJSON(*poisonOut); err != nil {
			return fail(err)
		}
		fmt.Printf("   wrote %s\n", *poisonOut)
		done()
	}
	if need("table4") {
		lab, err := getWiFiLab()
		if err != nil {
			return fail(err)
		}
		done := section("Table IV")
		res, err := experiments.Table4(lab)
		if err != nil {
			return fail(err)
		}
		fmt.Println(res.Render())
		done()
	}
	return 0
}
