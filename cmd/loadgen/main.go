// Command loadgen drives the verification server with a seeded, concurrent
// mix of real and forged trajectory uploads and reports throughput,
// latency percentiles, and detection counters.
//
// With -addr it targets a running server (e.g. lspserver). Without it, a
// provider is self-hosted in-process, bootstrapped from the workload's own
// simulated history, so forgery detection numbers are meaningful out of
// the box. The result is printed and written as JSON (BENCH_loadgen.json
// by default); the workload digest in the output is a SHA-256 over the
// exact request bytes, so equal seeds provably generate identical load.
//
// With -overload (on by default when self-hosting) a second scenario runs
// after the throughput measurement: a capacity-starved provider is offered
// several times its admitted concurrency and must shed the excess with
// 429 + Retry-After while keeping admitted latency bounded; the result
// lands under "overload" in the JSON output.
//
// With -stream (on by default) a third scenario drives the /v1/session
// streaming API: concurrent sessions with interleaved chunk appends and a
// mixed real/forged population, reporting per-chunk latency percentiles
// under "stream" in the JSON output.
//
// With -binary (on by default when self-hosting) the same digested
// workload is replayed over the binary wire (Content-Type
// application/x-trajforge-v1) against a second, identically-built fresh
// provider, so JSON and binary throughput are compared on equal footing;
// the result lands under "binary". With -kernel (on by default) the
// verify-kernel microbenchmark runs in-process — flattened vs pointer
// scoring in points/sec, binary vs JSON decode in ops/sec — and lands
// under "kernel".
//
// With -cluster (on by default) a further scenario re-runs the workload
// against a provider whose RSSI backend is a three-node shard cluster
// over loopback, live-migrating the busiest tile mid-run; req/s, forward
// ratio, and latency percentiles land under "cluster". A second pass runs
// with follower replication on, killing the busiest tile's primary node
// (and re-replicating its tiles) at the workload midpoint; forward ratio,
// replica-read ratio, and latency percentiles land under
// "cluster_replicated".
//
// With -openloop the command switches to the open-loop city harness
// instead: a Poisson/diurnal arrival schedule over a simulated city of
// agents drives mixed honest/attack traffic (batch uploads, streaming
// sessions, replayed navigation forgeries, spoof-jump teleports) at
// offered loads from 0.25x to 4x of the measured closed-loop capacity,
// against both single-process and cluster backends. Latency-vs-offered-
// load curves, shed ratios, and per-class verdict accuracy land under
// "openloop" in BENCH_openloop.json. -openloop-short runs a reduced
// 2-point sweep for CI.
//
// Usage:
//
//	loadgen [-addr URL] [-seed 1] [-n 200] [-workers 8] [-forged 0.3]
//	        [-points 20] [-data-dir DIR] [-overload] [-stream] [-binary]
//	        [-kernel] [-cluster] [-cluster-nodes 3] [-out BENCH_loadgen.json]
//	loadgen -openloop [-openloop-short] [-seed 1] [-cluster-nodes 3]
//	        [-openloop-out BENCH_openloop.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"trajforge/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of a running server (empty = self-host in-process)")
	seed := fs.Int64("seed", 1, "workload seed; fixes the exact request bytes")
	n := fs.Int("n", 200, "uploads to send")
	workers := fs.Int("workers", 8, "concurrent senders")
	forged := fs.Float64("forged", 0.3, "fraction of forged uploads")
	points := fs.Int("points", 20, "points per trajectory")
	hist := fs.Int("hist", 60, "historical uploads backing the provider")
	dataDir := fs.String("data-dir", "", "self-host with WAL persistence in this directory")
	overload := fs.Bool("overload", true,
		"also run the overload scenario against a capacity-starved self-hosted provider")
	streamFlag := fs.Bool("stream", true,
		"also run the streaming-session scenario (concurrent sessions, interleaved chunks)")
	binaryFlag := fs.Bool("binary", true,
		"also replay the workload over the binary wire against a fresh provider (self-host only)")
	kernelFlag := fs.Bool("kernel", true,
		"also run the verify-kernel microbenchmark (flattened vs pointer, binary vs JSON)")
	clusterFlag := fs.Bool("cluster", true,
		"also run the cluster scenario (multi-node shard backend, mid-run tile migration)")
	clusterNodes := fs.Int("cluster-nodes", 3, "shard nodes in the cluster scenario")
	out := fs.String("out", "BENCH_loadgen.json", "result file (empty = stdout only)")
	openloop := fs.Bool("openloop", false,
		"run the open-loop city harness instead (Poisson/diurnal arrivals, mixed honest/attack traffic, offered-load sweep)")
	openloopShort := fs.Bool("openloop-short", false,
		"reduced open-loop sweep for CI: fewer events, 2 load points")
	openloopOut := fs.String("openloop-out", "BENCH_openloop.json",
		"open-loop result file (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *openloop {
		return runOpenLoop(*seed, *clusterNodes, *openloopShort, *openloopOut)
	}

	opts := loadgen.Options{
		Seed: *seed, N: *n, Workers: *workers,
		ForgedFrac: *forged, Points: *points, Hist: *hist,
		BaseURL: *addr,
	}
	fmt.Printf("building workload (seed %d, %d uploads, %.0f%% forged)...\n",
		*seed, *n, *forged*100)
	w, err := loadgen.Build(opts)
	if err != nil {
		return err
	}
	fmt.Printf("workload digest %s\n", w.Digest[:16])

	if opts.BaseURL == "" {
		fmt.Println("self-hosting provider (training detector)...")
		srv, err := w.SelfHost(*seed, *dataDir)
		if err != nil {
			return err
		}
		defer srv.Close()
		opts.BaseURL = srv.URL
	}

	fmt.Printf("driving %s with %d workers...\n", opts.BaseURL, opts.Workers)
	res, err := w.Run(opts)
	if err != nil {
		return err
	}
	fmt.Printf("sent %d uploads in %.2fs: %.1f req/s, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		res.Uploads, res.DurationSec, res.ThroughputRPS,
		res.P50Millis, res.P95Millis, res.P99Millis)
	fmt.Printf("verdicts: %d accepted, %d rejected, %d errors\n",
		res.Accepted, res.Rejected, res.Errors)
	fmt.Printf("detection: %d/%d forged rejected, %d/%d real accepted\n",
		res.ForgedRejected, res.ForgedSent,
		res.RealAccepted, res.Uploads-res.ForgedSent)

	bench := &benchResult{Result: res}

	// The binary-wire comparison replays the same digested workload against
	// a second fresh provider: a shared provider would replay-reject the
	// repeats and short-circuit the pipeline, skewing the comparison.
	if *binaryFlag && *addr == "" {
		fmt.Println("replaying workload over the binary wire (fresh provider)...")
		srv2, err := w.SelfHost(*seed, "")
		if err != nil {
			return err
		}
		binOpts := opts
		binOpts.BaseURL = srv2.URL
		binOpts.Binary = true
		bres, err := w.Run(binOpts)
		srv2.Close()
		if err != nil {
			return err
		}
		bench.Binary = bres
		speedup := 0.0
		if res.ThroughputRPS > 0 {
			speedup = bres.ThroughputRPS / res.ThroughputRPS
		}
		fmt.Printf("binary wire: %.1f req/s vs %.1f json (%.2fx), p50 %.2fms p99 %.2fms\n",
			bres.ThroughputRPS, res.ThroughputRPS, speedup, bres.P50Millis, bres.P99Millis)
	}

	if *kernelFlag {
		fmt.Println("running verify-kernel microbenchmark...")
		kr, err := loadgen.RunKernel(*seed)
		if err != nil {
			return err
		}
		bench.Kernel = kr
		fmt.Printf("kernel: flattened batch %.0f points/s vs pointer %.0f (%.2fx); binary parse %.0f ops/s vs json %.0f (%.2fx)\n",
			kr.FlatBatchPointsPerSec, kr.PointerPointsPerSec, kr.SpeedupBatchVsPointer,
			kr.BinaryParseOpsPerSec, kr.JSONDecodeOpsPerSec, kr.DecodeSpeedup)
	}

	// The overload scenario always self-hosts: it needs a provider with a
	// deliberately tiny admission capacity, not the one under test above.
	if *overload {
		fmt.Println("running overload scenario (capacity-starved provider)...")
		ov, err := loadgen.RunOverload(loadgen.OverloadOptions{Seed: *seed})
		if err != nil {
			return err
		}
		bench.Overload = ov
		fmt.Printf("overload: %d offered at %dx capacity: %d admitted, %d shed (429), %d errors\n",
			ov.Offered, ov.Workers/ov.MaxInFlight, ov.Admitted, ov.Shed, ov.Errors)
		fmt.Printf("overload: p99 %.2fms admitted vs %.2fms uncontended, accounting ok: %v\n",
			ov.AdmittedP99Millis, ov.UncontendedP99Millis, ov.AccountingOK)
	}

	// The cluster scenario always self-hosts: it needs the provider's WiFi
	// backend swapped for an in-process multi-node shard cluster.
	if *clusterFlag {
		fmt.Println("running cluster scenario (multi-node shard backend, mid-run migration)...")
		cr, err := loadgen.RunCluster(loadgen.ClusterOptions{
			Seed: *seed, Workers: *workers, Nodes: *clusterNodes,
			ForgedFrac: *forged, Points: *points, Hist: *hist,
		})
		if err != nil {
			return err
		}
		bench.Cluster = cr
		fmt.Printf("cluster: %d nodes, %d uploads: %.1f req/s, p50 %.2fms p95 %.2fms p99 %.2fms\n",
			cr.Nodes, cr.Uploads, cr.ThroughputRPS, cr.P50Millis, cr.P95Millis, cr.P99Millis)
		fmt.Printf("cluster: %d forwarded shard RPCs (forward ratio %.2f), %d halo updates, epoch %d -> %d (%d migration)\n",
			cr.Forwarded, cr.ForwardRatio, cr.HaloUpdates, cr.EpochBefore, cr.Epoch, cr.Migrations)

		fmt.Println("running replicated cluster scenario (follower replicas, mid-run node kill)...")
		rr, err := loadgen.RunClusterReplicated(loadgen.ClusterOptions{
			Seed: *seed, Workers: *workers, Nodes: *clusterNodes,
			ForgedFrac: *forged, Points: *points, Hist: *hist,
		})
		if err != nil {
			return err
		}
		bench.ClusterReplicated = rr
		fmt.Printf("cluster_replicated: %d nodes, %d uploads: %.1f req/s, p50 %.2fms p95 %.2fms p99 %.2fms\n",
			rr.Nodes, rr.Uploads, rr.ThroughputRPS, rr.P50Millis, rr.P95Millis, rr.P99Millis)
		fmt.Printf("cluster_replicated: killed %s mid-run: %d errors, forward ratio %.2f, replica-read ratio %.2f, %d repairs, %d retried calls\n",
			rr.KilledNode, rr.Errors, rr.ForwardRatio, rr.ReplicaReadRatio, rr.Repairs, rr.RetriedCalls)
	}

	// The streaming scenario self-hosts its own streaming-enabled provider
	// (the one under test above may not expose /v1/session).
	if *streamFlag {
		fmt.Println("running streaming scenario (concurrent sessions, interleaved chunks)...")
		sr, err := loadgen.RunStream(loadgen.StreamOptions{Seed: *seed, Points: *points, Hist: *hist})
		if err != nil {
			return err
		}
		bench.Stream = sr
		fmt.Printf("stream: %d sessions (%d forged), %d chunks at %.1f chunks/s: %d accepted, %d rejected, %d early exits, %d errors\n",
			sr.Sessions, sr.ForgedSent, sr.ChunksSent, sr.ChunkThroughputRPS,
			sr.Accepted, sr.Rejected, sr.EarlyExits, sr.Errors)
		fmt.Printf("stream: chunk latency p50 %.2fms p95 %.2fms p99 %.2fms\n",
			sr.ChunkP50Millis, sr.ChunkP95Millis, sr.ChunkP99Millis)
	}

	if *out != "" {
		blob, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("result written to %s\n", *out)
	}
	return nil
}

// runOpenLoop drives the open-loop city harness and writes the
// BENCH_openloop.json schema ({"openloop": ...}).
func runOpenLoop(seed int64, nodes int, short bool, out string) error {
	opts := loadgen.OpenLoopOptions{Seed: seed, Nodes: nodes}
	if short {
		opts.Events = 80
		opts.Multipliers = []float64{0.5, 2}
		opts.Agents = 60
		opts.Hist = 48
		opts.Points = 16
		opts.ChunkGap = 150 * time.Millisecond
	}
	fmt.Printf("building open-loop city workload (seed %d)...\n", seed)
	res, err := loadgen.RunOpenLoop(opts)
	if err != nil {
		return err
	}
	fmt.Printf("workload digest %s (%d pool events, %d agents)\n",
		res.WorkloadDigest[:16], res.PoolEvents, res.Agents)
	for _, b := range []*loadgen.OLBackendResult{res.Single, res.Cluster} {
		if b == nil {
			continue
		}
		fmt.Printf("[%s] closed-loop capacity %.1f req/s (p99 %.2fms, sched slack p99 %.1fms)\n",
			b.Backend, b.ClosedLoop.CapacityRPS, b.ClosedLoop.P99Millis, b.ClosedLoop.SchedSlackP99Millis)
		for _, p := range b.Points {
			fmt.Printf("[%s] x%-4.2f offered %.1f req/s: p50 %.2fms p99 %.2fms (from-send %.2fms), shed %.1f%%, errors %d\n",
				b.Backend, p.Multiplier, p.OfferedRPS, p.P50Millis, p.P99Millis,
				p.P99FromSendMillis, p.ShedRatio*100, p.Errors)
			for _, cls := range []string{"honest", "honest_stream", "nav_attack", "spoof_jump"} {
				if cs := p.Classes[cls]; cs != nil {
					fmt.Printf("[%s]        %-13s %3d sent, %3d verdicts, accuracy %.2f, p99 %.2fms\n",
						b.Backend, cls, cs.Sent, cs.Completed, cs.Accuracy, cs.P99Millis)
				}
			}
		}
		if g := b.OmissionGap; g != nil {
			fmt.Printf("[%s] coordinated-omission gap at x%.2f: open-loop p99 %.2fms vs closed-loop %.2fms (%.1fx)\n",
				b.Backend, g.Multiplier, g.OpenLoopP99Millis, g.ClosedLoopP99Millis, g.Ratio)
		}
	}
	if out != "" {
		blob, err := json.MarshalIndent(map[string]*loadgen.OpenLoopResult{"openloop": res}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("result written to %s\n", out)
	}
	return nil
}

// benchResult is the BENCH_loadgen.json schema: the flat throughput
// result with the overload and streaming scenarios nested beside it.
type benchResult struct {
	*loadgen.Result
	// Binary is the same workload replayed over the binary wire against a
	// fresh, identically-built provider.
	Binary *loadgen.Result `json:"binary,omitempty"`
	// Kernel is the in-process verify-kernel microbenchmark.
	Kernel   *loadgen.KernelResult   `json:"kernel,omitempty"`
	Overload *loadgen.OverloadResult `json:"overload,omitempty"`
	Stream   *loadgen.StreamResult   `json:"stream,omitempty"`
	// Cluster re-runs the workload against a provider backed by a
	// multi-node shard cluster with a mid-run tile migration.
	Cluster *loadgen.ClusterResult `json:"cluster,omitempty"`
	// ClusterReplicated re-runs it with follower replication on and the
	// busiest tile's primary node killed (and repaired) mid-run.
	ClusterReplicated *loadgen.ClusterReplicatedResult `json:"cluster_replicated,omitempty"`
}
