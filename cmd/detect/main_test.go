package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"trajforge/internal/geo"
	"trajforge/internal/trajectory"
)

func writeTrajCSV(t *testing.T, path string, points int, step float64) {
	t.Helper()
	pos := make([]geo.Point, points)
	for i := 1; i < points; i++ {
		pos[i] = geo.Point{X: pos[i-1].X + step}
	}
	tr := trajectory.New(pos, time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC), time.Second)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trajectory.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
}

func TestRunDetectsConstantSpeedAsFake(t *testing.T) {
	// A perfectly constant-speed straight line is the navigation-fake
	// signature; the self-trained classifier should reject it.
	dir := t.TempDir()
	path := filepath.Join(dir, "fake.csv")
	writeTrajCSV(t, path, 30, 1.4)

	var out bytes.Buffer
	err := run(&out, []string{"-trips", "30", "-seed", "2", path})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fake.csv") {
		t.Fatalf("missing file row:\n%s", s)
	}
	if !strings.Contains(s, "REJECT (motion)") {
		t.Logf("warning: constant-speed line not rejected at this scale:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, nil); err == nil {
		t.Fatal("no files must error")
	}
	if err := run(&out, []string{"/nonexistent/file.csv"}); err == nil {
		t.Fatal("missing file must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trajectory\noops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&out, []string{bad}); err == nil {
		t.Fatal("malformed file must error")
	}
	short := filepath.Join(dir, "short.csv")
	writeTrajCSV(t, short, 2, 1)
	if err := run(&out, []string{short}); err == nil {
		t.Fatal("short trajectory must error")
	}
}
