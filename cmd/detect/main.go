// Command detect verifies trajectory files. It reads one or more CSV
// trajectories (as written by trajgen/forge), runs the motion classifier
// and the replay check against the other inputs, and prints a verdict per
// file. A self-contained classifier is trained at startup on simulated
// data, so the command works offline.
//
// Usage:
//
//	detect trips.csv forged.csv ...
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"trajforge"
	"trajforge/internal/attack"
	"trajforge/internal/detect"
	"trajforge/internal/trajectory"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "seed for the self-trained classifier")
	trips := fs.Int("trips", 50, "training trajectories per class")
	minD := fs.Float64("mind", 1.2, "replay threshold, DTW per metre")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no trajectory files given (expected CSVs from trajgen or forge)")
	}

	// Load inputs first so bad files fail fast.
	inputs := make([]*trajforge.Trajectory, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		tr, err := trajectory.ReadCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if tr.Len() < 3 {
			return fmt.Errorf("%s: trajectory too short (%d points)", path, tr.Len())
		}
		inputs = append(inputs, tr)
	}

	fmt.Fprintln(stdout, "training motion classifier on simulated data...")
	city, err := trajforge.NewCity(trajforge.CityConfig{
		Width: 500, Height: 400, BlockSize: 70, NumAPs: 1, Seed: *seed,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	start := time.Date(2022, 7, 1, 9, 0, 0, 0, time.UTC)
	points := inputs[0].Len()

	var reals, fakes []*trajforge.Trajectory
	for tries := 0; len(reals) < *trips && tries < *trips*30; tries++ {
		from := trajforge.PlanePoint{X: rng.Float64() * 500, Y: rng.Float64() * 400}
		to := trajforge.PlanePoint{X: rng.Float64() * 500, Y: rng.Float64() * 400}
		trip, err := city.Travel(trajforge.TripConfig{
			From: from, To: to, Mode: trajforge.ModeWalking, Points: points, Start: start,
		})
		if err != nil || trip.Upload.Traj.Len() != points {
			continue
		}
		clean, err := city.NavigationFake(from, to, trajforge.ModeWalking, points, start, time.Second)
		if err != nil || clean.Len() != points {
			continue
		}
		reals = append(reals, trip.Upload.Traj)
		fakes = append(fakes, attack.NaiveNavigation(rng, clean))
	}
	if len(reals) < *trips {
		return fmt.Errorf("could not assemble training corpus (%d/%d trips)", len(reals), *trips)
	}
	target, err := trajforge.TrainTargetClassifier(reals, fakes, 16, 30, *seed+2)
	if err != nil {
		return err
	}
	motion := &detect.LSTMDetector{DetectorName: "C", Model: target, Kind: trajforge.FeatureDistAngle}

	replay, err := trajforge.NewReplayChecker(*minD)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%-24s %10s %10s %8s\n", "file", "P(real)", "replay?", "verdict")
	for i, tr := range inputs {
		p := motion.ProbReal(tr)
		isReplay := replay.IsReplay(tr)
		verdict := "ACCEPT"
		if p < 0.5 {
			verdict = "REJECT (motion)"
		} else if isReplay {
			verdict = "REJECT (replay)"
		}
		fmt.Fprintf(stdout, "%-24s %10.3f %10v %8s\n", files[i], p, isReplay, verdict)
		replay.AddHistory(tr) // later files are checked against earlier ones
	}
	return nil
}
