package trajforge

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"trajforge/internal/server"
	"trajforge/internal/trajectory"
)

var _t0 = time.Date(2022, 7, 2, 10, 0, 0, 0, time.UTC)

func smallCity(t *testing.T) *City {
	t.Helper()
	city, err := NewCity(CityConfig{Width: 300, Height: 240, BlockSize: 60, NumAPs: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestNewCityErrors(t *testing.T) {
	if _, err := NewCity(CityConfig{Width: 0, Height: 100}); err == nil {
		t.Fatal("zero width must error")
	}
}

func TestCityTravelProducesUpload(t *testing.T) {
	city := smallCity(t)
	trip, err := city.Travel(TripConfig{
		From: PlanePoint{X: 10, Y: 10}, To: PlanePoint{X: 280, Y: 220},
		Mode: ModeWalking, Points: 30, Start: _t0, CollectScans: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trip.Upload.Traj.Len() != 30 {
		t.Fatalf("points = %d", trip.Upload.Traj.Len())
	}
	if err := trip.Upload.Validate(); err != nil {
		t.Fatal(err)
	}
	if trip.Upload.AverageK() < 1 {
		t.Fatalf("no APs heard: %v", trip.Upload.AverageK())
	}
	if len(trip.Truth) != 30 || len(trip.Route) < 2 {
		t.Fatal("truth/route missing")
	}
}

func TestCityTravelErrors(t *testing.T) {
	city := smallCity(t)
	if _, err := city.Travel(TripConfig{Points: 1}); err == nil {
		t.Fatal("short trip must error")
	}
	same := PlanePoint{X: 10, Y: 10}
	if _, err := city.Travel(TripConfig{From: same, To: same, Points: 10}); err == nil {
		t.Fatal("degenerate trip must error")
	}
}

func TestPlanRouteAndNavigationFake(t *testing.T) {
	city := smallCity(t)
	route, speed, err := city.PlanRoute(PlanePoint{X: 5, Y: 5}, PlanePoint{X: 290, Y: 230}, ModeCycling)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) < 2 || speed <= 0 {
		t.Fatalf("route=%d speed=%v", len(route), speed)
	}
	fake, err := city.NavigationFake(PlanePoint{X: 5, Y: 5}, PlanePoint{X: 290, Y: 230},
		ModeCycling, 25, _t0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fake.Len() != 25 {
		t.Fatalf("fake len = %d", fake.Len())
	}
}

// TestAttackDefenseRoundTrip drives the whole public API end to end:
// generate data, train the target, forge a trajectory that fools it, then
// catch the forgery with the WiFi detector via the HTTP service.
func TestAttackDefenseRoundTrip(t *testing.T) {
	city := smallCity(t)

	// 1. Corpus: real trips and naive navigation fakes.
	var reals []*Trajectory
	var fakes []*Trajectory
	var uploads []*Upload
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		from := PlanePoint{X: 10 + rng.Float64()*270, Y: 10 + rng.Float64()*210}
		to := PlanePoint{X: 10 + rng.Float64()*270, Y: 10 + rng.Float64()*210}
		trip, err := city.Travel(TripConfig{From: from, To: to, Mode: ModeWalking,
			Points: 30, Start: _t0, CollectScans: true})
		if err != nil || trip.Upload.Traj.Len() != 30 {
			continue // trip too short for the requested point count
		}
		reals = append(reals, trip.Upload.Traj)
		uploads = append(uploads, trip.Upload)
		fake, err := city.NavigationFake(from, to, ModeWalking, 30, _t0, time.Second)
		if err != nil {
			continue
		}
		fakes = append(fakes, fake)
	}
	if len(reals) < 30 || len(fakes) < 30 {
		t.Fatalf("corpus too small: %d real, %d fake", len(reals), len(fakes))
	}

	// 2. Target classifier and attack.
	target, err := TrainTargetClassifier(reals, fakes, 12, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	forger := NewForger(target, FeatureDistAngle)
	cfg := DefaultForgeryConfig(ScenarioReplay)
	cfg.Iterations = 300
	cfg.MinDPerMeter = 1.0
	cfg.Seed = 6
	res, err := forger.Forge(reals[0], cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Skip("attack did not converge at this tiny scale")
	}
	if DTWDistance(reals[0], res.Forged) < 0.5*reals[0].Length() {
		t.Log("forged trajectory is close to historical; replay check may flag it")
	}

	// 3. Defense: store + detector from the uploads.
	nHist := len(uploads) * 3 / 4
	store, err := NewRSSIStore(uploads[:nHist])
	if err != nil {
		t.Fatal(err)
	}
	var fakeUploads []*Upload
	frng := rand.New(rand.NewSource(7))
	for _, u := range uploads[:nHist] {
		f, err := ForgeUploadRSSI(frng, u, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		fakeUploads = append(fakeUploads, f)
	}
	det, err := TrainWiFiDetector(store, uploads[nHist:], fakeUploads[:nHist/2])
	if err != nil {
		t.Fatal(err)
	}

	// 4. Serve it and check a forged upload is rejected.
	pr := NewProjection(LatLon{Lat: 32.06, Lon: 118.79})
	svc, err := NewVerificationServer(server.Config{Projection: pr, WiFi: det})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := NewVerificationClient(ts.URL, pr)

	var caught int
	probe := fakeUploads[nHist/2:]
	for _, f := range probe {
		v, err := client.Upload(f)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Accepted {
			caught++
		}
	}
	if caught*2 < len(probe) {
		t.Fatalf("WiFi defense caught only %d/%d forged uploads", caught, len(probe))
	}
}

func TestReplayCheckerFacade(t *testing.T) {
	rc, err := NewReplayChecker(1.2)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrajectory([]PlanePoint{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}, _t0, time.Second)
	rc.AddHistory(tr)
	if !rc.IsReplay(tr) {
		t.Fatal("identical trajectory must be a replay")
	}
}

func TestEstimateMinDFacade(t *testing.T) {
	a := NewTrajectory([]PlanePoint{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}}, _t0, time.Second)
	b := NewTrajectory([]PlanePoint{{X: 0, Y: 1}, {X: 10, Y: 1}, {X: 20, Y: 1}}, _t0, time.Second)
	minD, err := EstimateMinD([]*Trajectory{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if minD <= 0 {
		t.Fatalf("MinD = %v", minD)
	}
}

func TestModeConstantsMatch(t *testing.T) {
	if ModeWalking != trajectory.ModeWalking || ModeDriving != trajectory.ModeDriving {
		t.Fatal("mode constants diverge")
	}
}

func TestCityRouteChecker(t *testing.T) {
	city := smallCity(t)
	rc, err := city.NewRouteChecker()
	if err != nil {
		t.Fatal(err)
	}
	trip, err := city.Travel(TripConfig{
		From: PlanePoint{X: 20, Y: 20}, To: PlanePoint{X: 250, Y: 200},
		Mode: ModeWalking, Points: 25, Start: _t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc.IsIrrational(trip.Upload.Traj) {
		t.Fatal("genuine trip flagged as route-irrational")
	}
	// Teleport the trip far off the map.
	off := trip.Upload.Traj.Clone()
	for i := range off.Points {
		off.Points[i].Pos.X += 5000
	}
	if !rc.IsIrrational(off) {
		t.Fatal("off-map trip accepted")
	}
}

func TestForgeUploadRSSIFacade(t *testing.T) {
	city := smallCity(t)
	trip, err := city.Travel(TripConfig{
		From: PlanePoint{X: 20, Y: 20}, To: PlanePoint{X: 250, Y: 200},
		Mode: ModeWalking, Points: 25, Start: _t0, CollectScans: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fake, err := ForgeUploadRSSI(rand.New(rand.NewSource(5)), trip.Upload, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if fake.Traj.Len() != trip.Upload.Traj.Len() {
		t.Fatal("forged upload length changed")
	}
	if DTWDistance(trip.Upload.Traj, fake.Traj) <= 0 {
		t.Fatal("forged upload identical to source")
	}
}
